// Package service implements the solver job engine behind cmd/solved: typed
// job specs (matrix × solver configuration × optional fault injection), a
// bounded FIFO queue with admission control, a worker pool that runs every
// solve inside the internal/sandbox reliability model, a metrics registry,
// and the HTTP handlers exposing all of it.
//
// The design transplants the paper's Section IV sandbox contract from the
// inner solves of FT-GMRES to the service boundary: each submitted job is an
// unreliable guest — it may be slow, wrong, hung, or panic — and the engine
// is the reliable host that always gets control back within the job's time
// budget. A job can therefore never take down the daemon, exactly as a
// faulty inner solve can never take down the outer iteration.
package service

import (
	"fmt"
	"time"

	"sdcgmres/internal/fault"
	"sdcgmres/internal/krylov"
	"sdcgmres/internal/qos"
)

// Resource ceilings for untrusted job specs. They bound the memory and
// assembly cost a single request can demand; the wall-clock cost is bounded
// separately by the per-job time budget.
const (
	// MaxGridN caps the grid side for poisson/convdiff (n² rows).
	MaxGridN = 512
	// MaxCircuitN caps the circuit surrogate dimension.
	MaxCircuitN = 60000
	// MaxMMBytes caps inline Matrix Market payloads.
	MaxMMBytes = 8 << 20
	// MaxOuterCap caps the outer iteration budget of a job.
	MaxOuterCap = 2000
	// MaxInnerCap caps the inner iterations per outer iteration.
	MaxInnerCap = 500
)

// MatrixSpec selects the linear system's operator. The right-hand side is
// always b = A·1 (a consistent system with known solution x = 1), which is
// what makes the service able to report a true forward error for every job.
type MatrixSpec struct {
	// Kind is the generator: "poisson", "circuit", "convdiff", or "mm"
	// for an inline Matrix Market payload.
	Kind string `json:"kind"`
	// N is the generator size (grid side for poisson/convdiff, dimension
	// for circuit). Ignored for "mm".
	N int `json:"n,omitempty"`
	// MM is the inline Matrix Market content for Kind "mm".
	MM string `json:"mm,omitempty"`
	// CX, CY are the convection coefficients for "convdiff" (defaults
	// 10, -5 when both zero).
	CX float64 `json:"cx,omitempty"`
	CY float64 `json:"cy,omitempty"`
}

// SolverSpec selects the solver and its resilience configuration.
type SolverSpec struct {
	// Kind is "ftgmres" (default), "gmres", or "cg".
	Kind string `json:"kind,omitempty"`
	// InnerIters is the FT-GMRES inner iteration count (default 25).
	InnerIters int `json:"inner_iters,omitempty"`
	// MaxOuter bounds outer (or plain GMRES/CG) iterations (default 60).
	MaxOuter int `json:"max_outer,omitempty"`
	// Tol is the relative residual tolerance (default 1e-8).
	Tol float64 `json:"tol,omitempty"`
	// Ortho is "mgs" (default), "cgs", or "cgs2".
	Ortho string `json:"ortho,omitempty"`
	// Policy is the projected least-squares policy: "triangular",
	// "fallback" (default), or "rank-revealing" (Section VI-D).
	Policy string `json:"policy,omitempty"`
	// Detector enables the Hessenberg-bound SDC detector.
	Detector bool `json:"detector,omitempty"`
	// Bound is "frobenius" (default) or "spectral".
	Bound string `json:"bound,omitempty"`
	// Response is "warn" (default), "halt", or "restart".
	Response string `json:"response,omitempty"`
	// Precond is "none" (default), "jacobi", "ssor", or "ilu0".
	Precond string `json:"precond,omitempty"`
	// RobustFirstSolve hardens the first inner solve (Sec. VII-E).
	RobustFirstSolve bool `json:"robust_first_solve,omitempty"`
}

// FaultSpec arms a single-shot SDC injector inside the solve — the service
// equivalent of cmd/sdcrun's fault flags, for resilience testing over HTTP.
type FaultSpec struct {
	// Class is "large", "slight", "tiny", "bitflip:<bit>", "set:<value>",
	// or "scale:<factor>".
	Class string `json:"class"`
	// At is the aggregate inner iteration to strike (1-based).
	At int `json:"at"`
	// Step is "first" (default), "last", or "norm".
	Step string `json:"step,omitempty"`
}

// JobSpec is one unit of work: solve one system with one configuration.
type JobSpec struct {
	Matrix MatrixSpec `json:"matrix"`
	Solver SolverSpec `json:"solver"`
	Fault  *FaultSpec `json:"fault,omitempty"`
	// TimeBudgetMS caps the solve's wall clock in milliseconds. Zero uses
	// the engine default; values above the engine maximum are clamped.
	TimeBudgetMS int64 `json:"time_budget_ms,omitempty"`
	// Tenant names the submitting tenant for QoS accounting. Empty falls
	// under the scheduler's default tenant; the HTTP layer also fills it
	// from the X-Tenant request header. Ignored when the engine runs
	// without a QoS scheduler.
	Tenant string `json:"tenant,omitempty"`
	// Class is the QoS priority class: "interactive", "batch" (the
	// default), or "background". Ignored without a QoS scheduler.
	Class string `json:"class,omitempty"`
	// DeadlineMS, when positive, is the job's start-by budget in
	// milliseconds: if the job cannot reach a worker within it, the
	// scheduler sheds the job instead of running it late. Ignored without
	// a QoS scheduler.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// Budget converts the job's time budget to a duration (0 = engine default).
func (s *JobSpec) Budget() time.Duration {
	return time.Duration(s.TimeBudgetMS) * time.Millisecond
}

// Deadline converts the job's start-by budget to a duration (0 = none).
func (s *JobSpec) Deadline() time.Duration {
	return time.Duration(s.DeadlineMS) * time.Millisecond
}

// QoSClass returns the spec's parsed priority class (Batch when unset;
// Validate has already rejected unknown names).
func (s *JobSpec) QoSClass() qos.Class {
	c, err := qos.ParseClass(s.Class)
	if err != nil {
		return qos.Batch
	}
	return c
}

// MaxTenantLen caps tenant names: they label Prometheus series, so an
// unbounded set would let one caller explode metric cardinality.
const MaxTenantLen = 64

// SolverKind returns the normalized solver kind.
func (s *JobSpec) SolverKind() string {
	if s.Solver.Kind == "" {
		return "ftgmres"
	}
	return s.Solver.Kind
}

// Validate rejects malformed or resource-abusive specs before admission.
func (s *JobSpec) Validate() error {
	switch s.Matrix.Kind {
	case "poisson", "convdiff":
		if s.Matrix.N < 2 || s.Matrix.N > MaxGridN {
			return fmt.Errorf("service: matrix n = %d out of range [2, %d]", s.Matrix.N, MaxGridN)
		}
	case "circuit":
		if s.Matrix.N < 2 || s.Matrix.N > MaxCircuitN {
			return fmt.Errorf("service: circuit n = %d out of range [2, %d]", s.Matrix.N, MaxCircuitN)
		}
	case "mm":
		if s.Matrix.MM == "" {
			return fmt.Errorf("service: matrix kind %q needs inline mm content", s.Matrix.Kind)
		}
		if len(s.Matrix.MM) > MaxMMBytes {
			return fmt.Errorf("service: mm payload %d bytes exceeds cap %d", len(s.Matrix.MM), MaxMMBytes)
		}
	case "":
		return fmt.Errorf("service: matrix kind missing (want poisson | circuit | convdiff | mm)")
	default:
		return fmt.Errorf("service: unknown matrix kind %q", s.Matrix.Kind)
	}

	switch s.SolverKind() {
	case "ftgmres", "gmres":
	case "cg":
		if s.Fault != nil {
			return fmt.Errorf("service: fault injection targets the Arnoldi coefficients; solver %q has none", "cg")
		}
		if s.Solver.Detector {
			return fmt.Errorf("service: the Hessenberg-bound detector does not apply to solver %q", "cg")
		}
	default:
		return fmt.Errorf("service: unknown solver kind %q", s.Solver.Kind)
	}
	if s.Solver.InnerIters < 0 || s.Solver.InnerIters > MaxInnerCap {
		return fmt.Errorf("service: inner_iters = %d out of range [0, %d]", s.Solver.InnerIters, MaxInnerCap)
	}
	if s.Solver.MaxOuter < 0 || s.Solver.MaxOuter > MaxOuterCap {
		return fmt.Errorf("service: max_outer = %d out of range [0, %d]", s.Solver.MaxOuter, MaxOuterCap)
	}
	if s.Solver.Tol < 0 || s.Solver.Tol >= 1 {
		return fmt.Errorf("service: tol = %g out of range [0, 1)", s.Solver.Tol)
	}
	if _, err := parseOrtho(s.Solver.Ortho); err != nil {
		return err
	}
	if _, err := parsePolicy(s.Solver.Policy); err != nil {
		return err
	}
	if _, err := parseBound(s.Solver.Bound); err != nil {
		return err
	}
	if _, err := parseResponse(s.Solver.Response); err != nil {
		return err
	}
	if _, err := parsePrecond(s.Solver.Precond); err != nil {
		return err
	}
	if s.TimeBudgetMS < 0 {
		return fmt.Errorf("service: time_budget_ms must be >= 0")
	}
	if s.DeadlineMS < 0 {
		return fmt.Errorf("service: deadline_ms must be >= 0")
	}
	if len(s.Tenant) > MaxTenantLen {
		return fmt.Errorf("service: tenant name %d bytes exceeds cap %d", len(s.Tenant), MaxTenantLen)
	}
	if _, err := qos.ParseClass(s.Class); err != nil {
		return err
	}

	if s.Fault != nil {
		if _, err := ParseFaultModel(s.Fault.Class); err != nil {
			return err
		}
		step := s.Fault.Step
		if step == "" {
			step = "first"
		}
		if _, err := ParseStep(step); err != nil {
			return err
		}
		if s.Fault.At < 1 {
			return fmt.Errorf("service: fault site %d must be >= 1", s.Fault.At)
		}
	}
	return nil
}

// ---- Spec builders (re-exported through the sdcgmres facade) ----

// defaultSolver is the service's recommended resilient configuration:
// FT-GMRES with the detector armed and the restart-inner response, so a
// detected transient SDC costs one clean re-run of one inner solve.
func defaultSolver() SolverSpec {
	return SolverSpec{
		Kind:     "ftgmres",
		Detector: true,
		Response: "restart",
	}
}

// PoissonJob builds a job spec for the paper's SPD Poisson problem at grid
// side n with the recommended resilient solver configuration.
func PoissonJob(n int) JobSpec {
	return JobSpec{Matrix: MatrixSpec{Kind: "poisson", N: n}, Solver: defaultSolver()}
}

// CircuitJob builds a job spec for the mult_dcop_03 surrogate at dimension n.
func CircuitJob(n int) JobSpec {
	return JobSpec{Matrix: MatrixSpec{Kind: "circuit", N: n}, Solver: defaultSolver()}
}

// ConvDiffJob builds a job spec for the convection-diffusion problem at grid
// side n.
func ConvDiffJob(n int) JobSpec {
	return JobSpec{Matrix: MatrixSpec{Kind: "convdiff", N: n}, Solver: defaultSolver()}
}

// MatrixMarketJob builds a job spec solving an inline Matrix Market system.
func MatrixMarketJob(mm string) JobSpec {
	return JobSpec{Matrix: MatrixSpec{Kind: "mm", MM: mm}, Solver: defaultSolver()}
}

// ---- String-form parsers (shared with cmd/sdcrun) ----

// ParseFaultModel parses a fault class spec: the paper's three classes by
// name ("large", "slight", "tiny") or an explicit model ("bitflip:<bit>",
// "set:<value>", "scale:<factor>"). It delegates to fault.ParseModel, the
// canonical parser shared with cmd/sdcrun and campaign manifests.
func ParseFaultModel(spec string) (fault.Model, error) {
	return fault.ParseModel(spec)
}

// ParseStep parses a Gram-Schmidt step selector name.
func ParseStep(s string) (fault.StepSelector, error) {
	return fault.ParseStepSelector(s)
}

func parseOrtho(s string) (krylov.OrthoMethod, error) {
	switch s {
	case "", "mgs":
		return krylov.MGS, nil
	case "cgs":
		return krylov.CGS, nil
	case "cgs2":
		return krylov.CGS2, nil
	}
	return 0, fmt.Errorf("service: unknown orthogonalization %q", s)
}

func parsePolicy(s string) (krylov.LSQPolicy, error) {
	switch s {
	case "triangular":
		return krylov.LSQTriangular, nil
	case "", "fallback":
		return krylov.LSQFallback, nil
	case "rank-revealing":
		return krylov.LSQRankRevealing, nil
	}
	return 0, fmt.Errorf("service: unknown lsq policy %q", s)
}
