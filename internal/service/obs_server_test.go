package service

import (
	"context"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"sdcgmres/internal/memo"
	"sdcgmres/internal/obs"
	"sdcgmres/internal/qos"
	"sdcgmres/internal/store"
)

// TestFullServerMetricsLint scrapes a server with every metrics-bearing
// subsystem wired — engine registry, QoS scheduler, memo cache, results
// store, RED middleware, introspector gauges, build info — after real
// traffic (including a throttled request) and requires the combined
// exposition to pass the strict text-format validator.
func TestFullServerMetricsLint(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	log := obs.NewLogger(obs.Options{Writer: io.Discard, Level: slog.LevelDebug, Ring: 256})
	intro := obs.NewIntrospector(log)
	intro.Register("probe", func() any { return map[string]any{"ok": true} })
	intro.RegisterGauge("solved_probe_gauge", "A test gauge.", func() float64 { return 1 })

	e := NewEngine(Config{
		Workers: 1,
		QoS: &qos.Config{
			Tenants: map[string]qos.TenantConfig{"slow": {Rate: 0.001, Burst: 1}},
		},
		Memo:   memo.New(memo.Config{}),
		Runner: stubRunner(-1, 0),
	})
	e.Start()
	defer e.Shutdown(context.Background())
	ts := httptest.NewServer(NewServer(e, ServerOptions{
		Store:        st,
		Log:          log,
		Introspector: intro,
	}))
	defer ts.Close()

	// Traffic: one accepted job, one throttled (grows the qos error
	// families), one 404 (grows the RED 4xx family).
	if resp := postJobTenant(t, ts.URL, "slow", PoissonJob(8)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: status %d", resp.StatusCode)
	}
	// A different spec, so the memo cache (consulted before QoS admission)
	// cannot satisfy it.
	if resp := postJobTenant(t, ts.URL, "slow", PoissonJob(9)); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second submit: status %d, want 429", resp.StatusCode)
	}
	if resp, err := http.Get(ts.URL + "/v1/jobs/nope"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("missing job: status %d, want 404", resp.StatusCode)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	expo := string(raw)
	for _, want := range []string{
		"solved_jobs_accepted_total", // engine registry
		"solved_qos_",                // QoS scheduler
		"solved_memo_",               // memo cache
		"solved_store_",              // results store
		"solved_http_requests_total", // RED middleware
		`class="4xx"`,                // RED error family, fed by the 404
		"solved_probe_gauge 1",       // introspector custom gauge
		"solved_goroutines",          // introspector runtime gauges
		"solved_build_info{",         // build identity
	} {
		if !strings.Contains(expo, want) {
			t.Fatalf("exposition missing %q:\n%s", want, expo)
		}
	}
	if errs := obs.LintPrometheusString(expo); len(errs) > 0 {
		for _, e := range errs {
			t.Errorf("lint: %v", e)
		}
		t.Fatalf("full-server /metrics fails exposition lint (%d problems)", len(errs))
	}
}
