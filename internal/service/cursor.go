package service

import (
	"fmt"
	"strconv"
	"strings"
)

// Page cursors are opaque resume tokens: the server hands one out
// (next_cursor in a results page, X-Next-Cursor on a trace page) and the
// client echoes it back verbatim in the next request's cursor parameter.
// Today a cursor encodes a position offset, but clients must not parse
// it — the encoding may change.
const cursorPrefix = "o"

// encodeCursor builds the resume token for a position.
func encodeCursor(pos int) string {
	return cursorPrefix + strconv.Itoa(pos)
}

// parseCursor decodes a client-echoed resume token.
func parseCursor(s string) (int, error) {
	rest, ok := strings.CutPrefix(s, cursorPrefix)
	if !ok {
		return 0, fmt.Errorf("malformed cursor %q", s)
	}
	pos, err := strconv.Atoi(rest)
	if err != nil || pos < 0 {
		return 0, fmt.Errorf("malformed cursor %q", s)
	}
	return pos, nil
}
