package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sdcgmres/internal/kernel"
	"sdcgmres/internal/memo"
	"sdcgmres/internal/obs"
	"sdcgmres/internal/qos"
	"sdcgmres/internal/sandbox"
	"sdcgmres/internal/trace"
)

// Engine API errors.
var (
	// ErrDraining: the engine is shutting down and admits no new work.
	ErrDraining = errors.New("service: engine draining")
	// ErrUnknownJob: no job with that ID (possibly evicted by retention).
	ErrUnknownJob = errors.New("service: unknown job")
	// ErrNotCancelable: the job already reached a terminal state.
	ErrNotCancelable = errors.New("service: job already terminal")
	// ErrNoTrace: tracing is disabled, or the job has no recorder yet.
	ErrNoTrace = errors.New("service: no trace for job")
)

// Runner executes one validated job spec. The engine calls it inside the
// sandbox with a deadline-carrying context, so a Runner may hang or panic
// without harming the process. rec is the job's flight recorder — nil
// unless the engine was configured with a TraceCapacity — and a Runner
// must tolerate nil (every trace.Recorder method is nil-safe, so passing
// it through unconditionally is fine). pool is the engine worker's
// persistent kernel pool — nil when the engine has no kernel budget — and
// a Runner must tolerate nil too (a nil pool means sequential kernels,
// with bit-identical results).
type Runner func(ctx context.Context, spec *JobSpec, rec *trace.Recorder, pool *kernel.Pool) (*SolveRecord, error)

// Config parameterizes an Engine. The zero value is usable: every field
// has a production default.
type Config struct {
	// Workers is the worker pool size (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the admission queue (default 64).
	QueueDepth int
	// DefaultBudget is the per-job wall-clock budget when the spec names
	// none (default 30s).
	DefaultBudget time.Duration
	// MaxBudget clamps spec-requested budgets (default 5m).
	MaxBudget time.Duration
	// Retain bounds how many terminal jobs stay queryable before the
	// oldest are evicted (default 1024).
	Retain int
	// Metrics receives the engine's observations (default: a fresh
	// registry, available via Engine.Metrics).
	Metrics *Metrics
	// Runner executes solves (default RunSpec). Tests substitute stubs.
	Runner Runner
	// TraceCapacity, when positive, gives every job a flight recorder
	// ring of that many events, queryable via JobTrace while the job runs
	// and after it finishes (until retention evicts it). Zero disables
	// tracing: runners receive a nil recorder and pay one pointer check
	// per event site.
	TraceCapacity int
	// KernelWorkers is the process's total shared-memory kernel budget
	// (0 = sequential kernels). Each engine worker gets a persistent pool
	// of max(1, KernelWorkers/Workers) kernel workers, so job concurrency
	// times pool width never oversubscribes the budget. Kernels are
	// bitwise deterministic: solve records are identical for every
	// KernelWorkers value.
	KernelWorkers int
	// QoS, when non-nil, replaces the flat FIFO at the engine's
	// backpressure point with the internal/qos multi-tenant scheduler:
	// per-tenant rate limits, weighted-fair queuing, priority classes with
	// aging, deadline shedding, and circuit breakers. Nil preserves
	// today's single-queue FIFO semantics exactly. The config must be
	// valid (qos.ParseConfig and qos.LoadConfig validate); NewEngine
	// panics on one that is not.
	QoS *qos.Config
	// QoSClock injects the scheduler's clock (nil = time.Now). Tests use
	// a deterministic clock so scheduling assertions never sleep.
	QoSClock func() time.Time
	// Memo, when non-nil, is the content-addressed solve cache. The
	// engine consults it at submission — before any QoS admission, so a
	// hit never spends a token-bucket token or a worker — and collapses
	// concurrent identical in-flight jobs onto one execution via its
	// singleflight. Nil disables memoization at the cost of one pointer
	// check per submit; every output is byte-for-byte what it was
	// without a cache.
	Memo *memo.Cache
	// Log receives the engine's structured lifecycle records (job
	// accepted / started / terminal / shed), each stamped with the job's
	// correlation ID. Nil disables logging at the cost of one pointer
	// check per site — the same "free when off" contract as the trace
	// recorder.
	Log *obs.Logger
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.DefaultBudget <= 0 {
		c.DefaultBudget = 30 * time.Second
	}
	if c.MaxBudget <= 0 {
		c.MaxBudget = 5 * time.Minute
	}
	if c.Retain <= 0 {
		c.Retain = 1024
	}
	if c.Metrics == nil {
		c.Metrics = NewMetrics()
	}
	if c.Runner == nil {
		c.Runner = RunSpec
	}
	return c
}

// Engine is the solver job engine: a bounded queue feeding a worker pool
// that runs each solve inside the sandbox reliability model. It is the
// reliable host of the paper's Section IV contract, with every job as an
// unreliable guest.
type Engine struct {
	cfg   Config
	queue *FIFO[*Job]
	// sched is the QoS scheduler when Config.QoS is set; nil otherwise.
	// Exactly one of the two queue paths is in use for the engine's whole
	// lifetime.
	sched   *qos.Scheduler[*Job]
	wg      sync.WaitGroup
	started atomic.Bool
	drain   atomic.Bool
	nextID  atomic.Int64

	// baseCtx parents every job context; hardCancel aborts all running
	// jobs when a shutdown deadline expires.
	baseCtx    context.Context
	hardCancel context.CancelFunc

	// pools holds one persistent kernel pool per engine worker (nil
	// entries mean sequential kernels). Built by Start, closed by
	// Shutdown after the drain completes.
	pools []*kernel.Pool

	mu   sync.Mutex
	jobs map[string]*Job
	done []string // terminal job IDs in completion order, for eviction
}

// NewEngine builds an engine; call Start to launch the worker pool.
func NewEngine(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	e := &Engine{
		cfg:        cfg,
		queue:      NewFIFO[*Job](cfg.QueueDepth),
		baseCtx:    ctx,
		hardCancel: cancel,
		jobs:       make(map[string]*Job),
	}
	if cfg.QoS != nil {
		sched, err := qos.New[*Job](*cfg.QoS, qos.Options[*Job]{
			Now:         cfg.QoSClock,
			Workers:     cfg.Workers,
			ServiceTime: cfg.Metrics.MeanServiceTime,
			OnShed:      e.shedExpired,
			TraceOf: func(j *Job) *trace.Recorder {
				j.mu.Lock()
				defer j.mu.Unlock()
				return j.trace
			},
		})
		if err != nil {
			panic(fmt.Sprintf("service: invalid QoS config: %v", err))
		}
		e.sched = sched
	}
	return e
}

// Metrics returns the engine's registry.
func (e *Engine) Metrics() *Metrics { return e.cfg.Metrics }

// Workers returns the worker pool size.
func (e *Engine) Workers() int { return e.cfg.Workers }

// QueueLen returns the number of jobs waiting for a worker.
func (e *Engine) QueueLen() int {
	if e.sched != nil {
		return e.sched.Len()
	}
	return e.queue.Len()
}

// QoSEnabled reports whether the engine runs the multi-tenant QoS
// scheduler instead of the flat FIFO.
func (e *Engine) QoSEnabled() bool { return e.sched != nil }

// QoSState snapshots the scheduler's per-tenant state for /healthz.
// Nil when the engine runs without QoS.
func (e *Engine) QoSState() []qos.TenantState {
	if e.sched == nil {
		return nil
	}
	return e.sched.State()
}

// WriteQoSMetrics appends the per-tenant solved_qos_* series to a
// /metrics response. No-op without a QoS scheduler.
func (e *Engine) WriteQoSMetrics(w io.Writer) {
	if e.sched != nil {
		e.sched.WritePrometheus(w)
	}
}

// RetryAfter estimates how many whole seconds a rejected submitter should
// wait before retrying: live queue depth × the mean observed service time
// ÷ worker count, ceiling, minimum 1.
func (e *Engine) RetryAfter() int {
	wait := float64(e.QueueLen()) * e.cfg.Metrics.MeanServiceTime().Seconds() / float64(e.cfg.Workers)
	s := int(math.Ceil(wait))
	if s < 1 {
		s = 1
	}
	return s
}

// Draining reports whether shutdown has begun.
func (e *Engine) Draining() bool { return e.drain.Load() }

// Start launches the worker pool. Safe to call once.
func (e *Engine) Start() {
	if !e.started.CompareAndSwap(false, true) {
		return
	}
	perWorker := 0
	if e.cfg.KernelWorkers > 0 {
		perWorker = e.cfg.KernelWorkers / e.cfg.Workers
		if perWorker < 1 {
			perWorker = 1
		}
	}
	e.pools = make([]*kernel.Pool, e.cfg.Workers)
	if perWorker > 1 {
		for i := range e.pools {
			e.pools[i] = kernel.New(perWorker)
		}
	}
	e.wg.Add(e.cfg.Workers)
	for i := 0; i < e.cfg.Workers; i++ {
		go e.worker(e.pools[i])
	}
}

// KernelStats sums kernel-pool activity across the engine's workers.
// All-zero when the engine runs sequential kernels.
func (e *Engine) KernelStats() kernel.Stats {
	var total kernel.Stats
	for _, p := range e.pools {
		total.Add(p.Stats())
	}
	return total
}

// Submit validates and enqueues a job with a fresh correlation ID; see
// SubmitCtx.
func (e *Engine) Submit(spec JobSpec) (JobView, error) {
	return e.SubmitCtx(context.Background(), spec)
}

// SubmitCtx validates and enqueues a job, adopting the correlation ID
// carried by ctx (minting one when absent) so the job's logs and trace
// join the submitting request. It returns ErrDraining during shutdown,
// ErrQueueFull when the FIFO rejects the job, a *qos.ShedError when the
// QoS scheduler rejects it (carrying the reason and retry advice), or
// the spec's validation error.
func (e *Engine) SubmitCtx(ctx context.Context, spec JobSpec) (JobView, error) {
	if e.drain.Load() {
		return JobView{}, ErrDraining
	}
	if err := spec.Validate(); err != nil {
		return JobView{}, err
	}
	cid := obs.FromContext(ctx).ID
	if cid == "" {
		cid = obs.NewID()
	}
	// Cache lookup precedes every admission decision: a memoized solve
	// is served without touching the FIFO or the QoS scheduler.
	var memoKey string
	if e.cfg.Memo != nil {
		memoKey = memo.JobKey(SpecDigest(&spec))
		if raw, ok := e.cfg.Memo.Get(memoKey); ok {
			if view, done := e.completeFromMemo(spec, cid, memoKey, raw); done {
				return view, nil
			}
		}
	}
	j := &Job{
		id:        fmt.Sprintf("job-%06d", e.nextID.Add(1)),
		spec:      spec,
		cid:       cid,
		memoKey:   memoKey,
		state:     StateQueued,
		submitted: time.Now(),
	}
	e.mu.Lock()
	e.jobs[j.id] = j
	e.mu.Unlock()
	if err := e.enqueue(j); err != nil {
		e.mu.Lock()
		delete(e.jobs, j.id)
		e.mu.Unlock()
		if l := e.cfg.Log; l != nil {
			l.Warn(e.jobCtx(j), "job rejected", "reason", err.Error())
		}
		if errors.Is(err, ErrQueueClosed) || errors.Is(err, qos.ErrClosed) {
			return JobView{}, ErrDraining
		}
		e.cfg.Metrics.JobsRejected.Inc()
		return JobView{}, err
	}
	e.cfg.Metrics.JobsAccepted.Inc()
	if l := e.cfg.Log; l != nil {
		l.Info(e.jobCtx(j), "job accepted", "solver", j.spec.SolverKind())
	}
	return j.View(), nil
}

// jobCtx builds the logging context carrying a job's correlation
// identity.
func (e *Engine) jobCtx(j *Job) context.Context {
	return obs.With(context.Background(), obs.Correlation{ID: j.cid, Job: j.id, Tenant: j.spec.Tenant})
}

// enqueue hands a job to whichever queue path the engine runs.
func (e *Engine) enqueue(j *Job) error {
	if e.sched == nil {
		return e.queue.Push(j)
	}
	// The QoS path gives the job its flight recorder at admission, so the
	// qos-admit/qos-shed events land on its own trace. The FIFO path keeps
	// creating it at run start, unchanged.
	var tr *trace.Recorder
	if e.cfg.TraceCapacity > 0 {
		tr = trace.NewRecorder(e.cfg.TraceCapacity)
		tr.Correlate(j.cid)
		j.mu.Lock()
		j.trace = tr
		j.mu.Unlock()
	}
	// The scheduler records the qos-admit event itself (via the TraceOf
	// hook, under its lock) so it lands on the trace before any worker
	// can pop the job and record run events.
	spec := &j.spec
	return e.sched.Push(spec.Tenant, spec.QoSClass(), spec.Deadline(), j)
}

// qosTenant is the spec's tenant as the scheduler accounts it.
func qosTenant(spec *JobSpec) string {
	if spec.Tenant == "" {
		return qos.DefaultTenant
	}
	return spec.Tenant
}

// shedExpired is the scheduler's OnShed callback: the job's deadline
// expired while it was queued, and it will never reach a worker.
func (e *Engine) shedExpired(tenant string, j *Job) {
	// The job dies without reporting an outcome; free the half-open probe
	// slot it may hold before it turns visibly terminal, or a lost probe
	// would lock the tenant out.
	e.sched.ReleaseProbe(tenant)
	j.mu.Lock()
	if j.state.Terminal() { // e.g. canceled while queued; already retired
		j.mu.Unlock()
		return
	}
	j.state = StateShed
	j.err = "deadline expired while queued"
	j.finished = time.Now()
	waited := j.finished.Sub(j.submitted)
	tr := j.trace
	j.mu.Unlock()
	tr.QoSShed(tenant, string(qos.ReasonExpired), float64(waited.Milliseconds()), 0)
	e.cfg.Metrics.JobsShed.Inc()
	if l := e.cfg.Log; l != nil {
		l.Warn(e.jobCtx(j), "job shed", "reason", "deadline expired while queued",
			"waited_ms", waited.Milliseconds())
	}
	e.retire(j)
}

// Job returns a snapshot of the job with the given ID.
func (e *Engine) Job(id string) (JobView, bool) {
	e.mu.Lock()
	j, ok := e.jobs[id]
	e.mu.Unlock()
	if !ok {
		return JobView{}, false
	}
	return j.View(), true
}

// JobTrace returns the recorded flight-recorder events of a job,
// oldest-first. It returns ErrUnknownJob for unknown (or evicted) IDs and
// ErrNoTrace when tracing is disabled or the job has not started yet.
func (e *Engine) JobTrace(id string) ([]trace.Event, error) {
	e.mu.Lock()
	j, ok := e.jobs[id]
	e.mu.Unlock()
	if !ok {
		return nil, ErrUnknownJob
	}
	j.mu.Lock()
	tr := j.trace
	j.mu.Unlock()
	if tr == nil {
		return nil, ErrNoTrace
	}
	return tr.Events(), nil
}

// Jobs snapshots every tracked job in submission order.
func (e *Engine) Jobs() []JobView {
	e.mu.Lock()
	all := make([]*Job, 0, len(e.jobs))
	for _, j := range e.jobs {
		all = append(all, j)
	}
	e.mu.Unlock()
	views := make([]JobView, len(all))
	for i, j := range all {
		views[i] = j.View()
	}
	// Submission order == ID order by construction.
	for i := 1; i < len(views); i++ {
		for k := i; k > 0 && views[k].ID < views[k-1].ID; k-- {
			views[k], views[k-1] = views[k-1], views[k]
		}
	}
	return views
}

// Cancel aborts a queued or running job. Queued jobs turn terminal
// immediately and are skipped when a worker reaches them; running jobs get
// their context canceled and the abandoned guest is left to the sandbox.
func (e *Engine) Cancel(id string) (JobView, error) {
	e.mu.Lock()
	j, ok := e.jobs[id]
	e.mu.Unlock()
	if !ok {
		return JobView{}, ErrUnknownJob
	}
	j.mu.Lock()
	switch {
	case j.state == StateQueued:
		j.state = StateCanceled
		j.err = "canceled while queued"
		j.finished = time.Now()
		j.mu.Unlock()
		e.cfg.Metrics.JobsCanceled.Inc()
		e.retire(j)
	case j.state == StateRunning && j.cancel != nil:
		j.cancel()
		j.mu.Unlock()
	default:
		j.mu.Unlock()
		return j.View(), ErrNotCancelable
	}
	return j.View(), nil
}

// Shutdown drains the engine: admission stops immediately, queued jobs are
// still executed, and Shutdown returns when every worker has finished. If
// ctx ends before the drain completes, all running jobs are hard-canceled
// (their guests abandoned) and Shutdown waits for the workers to observe
// that, then returns ctx's error.
func (e *Engine) Shutdown(ctx context.Context) error {
	e.drain.Store(true)
	e.queue.Close()
	if e.sched != nil {
		e.sched.Close()
	}
	drained := make(chan struct{})
	go func() {
		e.wg.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		e.hardCancel()
		<-drained
		err = ctx.Err()
	}
	for _, p := range e.pools {
		p.Close()
	}
	return err
}

// worker pops jobs until the queue closes and drains. pool is this
// worker's persistent kernel pool (nil = sequential kernels).
func (e *Engine) worker(pool *kernel.Pool) {
	defer e.wg.Done()
	for {
		var j *Job
		var ok bool
		if e.sched != nil {
			j, ok = e.sched.Pop()
		} else {
			j, ok = e.queue.Pop()
		}
		if !ok {
			return
		}
		e.run(j, pool)
	}
}

// budget resolves a job's effective wall-clock budget.
func (e *Engine) budget(spec *JobSpec) time.Duration {
	b := spec.Budget()
	if b <= 0 {
		b = e.cfg.DefaultBudget
	}
	if b > e.cfg.MaxBudget {
		b = e.cfg.MaxBudget
	}
	return b
}

// run executes one job under the sandbox contract and records its fate.
func (e *Engine) run(j *Job, pool *kernel.Pool) {
	m := e.cfg.Metrics

	j.mu.Lock()
	if j.state.Terminal() { // canceled while queued; already retired
		j.mu.Unlock()
		if e.sched != nil {
			// The admitted job dies without running, so it will never
			// report an outcome; free the probe slot it may hold.
			e.sched.ReleaseProbe(qosTenant(&j.spec))
		}
		return
	}
	ctx, cancel := context.WithTimeout(e.baseCtx, e.budget(&j.spec))
	j.state = StateRunning
	j.started = time.Now()
	j.cancel = cancel
	j.mu.Unlock()
	defer cancel()

	var tr *trace.Recorder
	if e.cfg.TraceCapacity > 0 {
		j.mu.Lock()
		tr = j.trace // the QoS path created it at admission
		if tr == nil {
			tr = trace.NewRecorder(e.cfg.TraceCapacity)
			tr.Correlate(j.cid)
			j.trace = tr
		}
		j.mu.Unlock()
	}
	if l := e.cfg.Log; l != nil {
		l.Debug(e.jobCtx(j), "job started", "solver", j.spec.SolverKind())
	}

	var rec *SolveRecord
	var rep sandbox.Report
	executed := false
	exec := func() ([]byte, error) {
		executed = true
		rep = sandbox.RunCtx(ctx, 0, func() error {
			r, err := e.cfg.Runner(ctx, &j.spec, tr, pool)
			if err != nil {
				return err
			}
			rec = r
			return nil
		})
		if rep.Outcome == sandbox.OK && rec != nil {
			return json.Marshal(rec)
		}
		if rep.Err != nil {
			return nil, rep.Err
		}
		return nil, errNoResult
	}
	fromMemo := false
	if e.cfg.Memo != nil && j.memoKey != "" {
		// Singleflight: identical jobs already in flight on another
		// worker become one execution; followers wait on the leader's
		// result instead of recomputing it. Only a successful leader is
		// shared — if it fails, each follower takes its own turn (the
		// exec closure runs, and the classification below sees its own
		// sandbox report). A follower's wait is bounded by the leader's
		// wall-clock budget.
		raw, how, _ := e.cfg.Memo.Do(j.memoKey, exec)
		if !executed {
			cached := new(SolveRecord)
			if err := json.Unmarshal(raw, cached); err == nil {
				rec = cached
				rep = sandbox.Report{Outcome: sandbox.OK}
				fromMemo = true
				tr.MemoHit(j.memoKey, memoHow(how), len(raw))
			} else {
				// Undecodable payload (defensive): run fresh.
				exec()
			}
		}
	} else {
		exec()
	}

	j.mu.Lock()
	j.cancel = nil
	j.fromMemo = fromMemo
	j.finished = time.Now()
	elapsed := j.finished.Sub(j.started)
	switch {
	case rep.Outcome == sandbox.OK && rec != nil:
		j.state = StateDone
		j.result = rec
	case isDeadline(rep.Err):
		j.state = StateTimedOut
		j.err = fmt.Sprintf("wall-clock budget exceeded after %v", elapsed.Round(time.Millisecond))
	case isCancel(rep.Err):
		j.state = StateCanceled
		j.err = "canceled while running"
	default:
		// Runner error, panic, or an OK report with no record (a guest
		// that lied) — all are failures the host absorbs.
		j.state = StateFailed
		if rep.Err != nil {
			j.err = rep.Err.Error()
		} else {
			j.err = "runner returned no result"
		}
	}
	state := j.state
	j.mu.Unlock()

	switch state {
	case StateDone:
		m.JobsCompleted.Inc()
		// Memo-satisfied jobs skip the latency histograms (no solve ran
		// here, and Retry-After must keep estimating real executions)
		// and the detector/fault aggregates (that work happened in the
		// execution that populated the cache).
		if !fromMemo {
			m.ObserveSolve(j.spec.SolverKind(), elapsed)
			m.DetectorFirings.Add(int64(rec.Detections))
			m.SandboxFailures.Add(int64(rec.SandboxFailures))
			if rec.FaultFired {
				m.FaultInjections.Inc()
			}
		}
	case StateTimedOut:
		m.JobsTimedOut.Inc()
	case StateCanceled:
		m.JobsCanceled.Inc()
	default:
		m.JobsFailed.Inc()
	}
	if e.sched != nil {
		// Feed the tenant's circuit breaker: a panic or a blown wall-clock
		// budget is the guest misbehaving; everything else (including a
		// plain error or a caller cancel) is not.
		good := rep.Outcome != sandbox.Panicked && rep.Outcome != sandbox.TimedOut
		e.sched.ReportOutcome(j.spec.Tenant, good)
	}
	if l := e.cfg.Log; l != nil {
		lctx := e.jobCtx(j)
		if state == StateDone {
			l.Info(lctx, "job done", "elapsed_ms", elapsed.Milliseconds(), "from_memo", fromMemo)
		} else {
			j.mu.Lock()
			errMsg := j.err
			j.mu.Unlock()
			l.Warn(lctx, "job terminal", "state", string(state),
				"elapsed_ms", elapsed.Milliseconds(), "error", errMsg)
		}
	}
	e.retire(j)
}

// retire records a terminal job and evicts the oldest beyond the retention
// cap, bounding the engine's memory under sustained traffic.
func (e *Engine) retire(j *Job) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.done = append(e.done, j.id)
	for len(e.done) > e.cfg.Retain {
		delete(e.jobs, e.done[0])
		e.done = e.done[1:]
	}
}

func isDeadline(err error) bool { return errors.Is(err, context.DeadlineExceeded) }
func isCancel(err error) bool   { return errors.Is(err, context.Canceled) }

// errNoResult marks an OK sandbox report with no record (a guest that
// lied); it keeps such runs out of the memo cache.
var errNoResult = errors.New("service: runner returned no result")
