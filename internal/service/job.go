package service

import (
	"context"
	"sync"
	"time"

	"sdcgmres/internal/trace"
)

// State is a job's lifecycle position.
type State string

const (
	// StateQueued: admitted, waiting for a worker.
	StateQueued State = "queued"
	// StateRunning: a worker is executing the solve.
	StateRunning State = "running"
	// StateDone: the solve returned a record (converged or not — see the
	// record; "done" means the guest completed, not that it succeeded
	// numerically).
	StateDone State = "done"
	// StateFailed: the solve returned an error or panicked.
	StateFailed State = "failed"
	// StateTimedOut: the job's wall-clock budget expired; the guest was
	// abandoned per the sandbox contract.
	StateTimedOut State = "timed-out"
	// StateCanceled: canceled by the caller or by engine shutdown before
	// completing.
	StateCanceled State = "canceled"
	// StateShed: the QoS scheduler dropped the job because its deadline
	// expired while it was still queued; it never occupied a worker.
	StateShed State = "shed"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	switch s {
	case StateDone, StateFailed, StateTimedOut, StateCanceled, StateShed:
		return true
	}
	return false
}

// Job is one tracked unit of work inside the engine. All mutable fields are
// guarded by mu; external observers read consistent snapshots via View.
type Job struct {
	id   string
	spec JobSpec
	// cid is the observability correlation ID minted (or adopted from the
	// request) at submission; it joins this job's log records, trace
	// events and API view. Immutable after construction.
	cid string
	// memoKey is the job's content-addressed cache key ("" when the
	// engine runs without a memo cache). Set before the job is
	// published, immutable afterwards.
	memoKey string

	mu    sync.Mutex
	state State
	err   string
	// fromMemo marks a job satisfied from the solve cache (at
	// submission or via singleflight) instead of a fresh execution.
	fromMemo  bool
	result    *SolveRecord
	submitted time.Time
	started   time.Time
	finished  time.Time
	// cancel aborts the running solve's context; non-nil only while
	// running.
	cancel context.CancelFunc
	// trace is the job's flight recorder; non-nil only when the engine
	// runs with a TraceCapacity, set when the job starts.
	trace *trace.Recorder
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// JobView is an immutable snapshot of a job, also its JSON wire form.
type JobView struct {
	ID    string `json:"id"`
	State State  `json:"state"`
	// CID is the correlation ID stamped on every log record and trace
	// event this job produced — the grep key that joins them.
	CID string `json:"cid,omitempty"`
	// Budget is the effective wall-clock budget in milliseconds (0 until
	// the engine resolves the default at start).
	Spec   JobSpec      `json:"spec"`
	Error  string       `json:"error,omitempty"`
	Result *SolveRecord `json:"result,omitempty"`
	// FromMemo marks a result served from the content-addressed solve
	// cache; the record is byte-identical to a fresh execution's.
	// Absent (false) whenever the daemon runs without a cache, keeping
	// the wire form unchanged.
	FromMemo    bool       `json:"from_memo,omitempty"`
	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
}

// View snapshots the job under its lock.
func (j *Job) View() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:          j.id,
		State:       j.state,
		CID:         j.cid,
		Spec:        j.spec,
		Error:       j.err,
		Result:      j.result,
		FromMemo:    j.fromMemo,
		SubmittedAt: j.submitted,
	}
	if !j.started.IsZero() {
		t := j.started
		v.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.FinishedAt = &t
	}
	return v
}
