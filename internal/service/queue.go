package service

import (
	"errors"
	"sync"
)

// Queue admission errors.
var (
	// ErrQueueFull: the bounded queue is at capacity — the caller should
	// back off (the HTTP layer maps this to 429).
	ErrQueueFull = errors.New("service: queue full")
	// ErrQueueClosed: the queue no longer admits work (engine draining —
	// mapped to 503).
	ErrQueueClosed = errors.New("service: queue closed")
)

// FIFO is a bounded first-in-first-out queue with non-blocking admission
// and blocking removal — the engine's backpressure point. Push never
// blocks: when the queue is at capacity the work is rejected immediately,
// which is what lets the service shed load instead of accumulating it.
type FIFO[T any] struct {
	mu       sync.Mutex
	nonEmpty *sync.Cond
	items    []T
	head     int
	capacity int
	closed   bool
}

// NewFIFO returns a queue bounded at capacity items (minimum 1).
func NewFIFO[T any](capacity int) *FIFO[T] {
	if capacity < 1 {
		capacity = 1
	}
	q := &FIFO[T]{capacity: capacity}
	q.nonEmpty = sync.NewCond(&q.mu)
	return q
}

// Push admits v or fails immediately with ErrQueueFull / ErrQueueClosed.
func (q *FIFO[T]) Push(v T) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrQueueClosed
	}
	if len(q.items)-q.head >= q.capacity {
		return ErrQueueFull
	}
	q.items = append(q.items, v)
	q.nonEmpty.Signal()
	return nil
}

// Pop blocks until an item is available and returns it in FIFO order. The
// second result is false when the queue is closed and fully drained —
// workers use that as their exit signal, so Close + Pop-until-false is the
// graceful drain.
func (q *FIFO[T]) Pop() (T, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == q.head && !q.closed {
		q.nonEmpty.Wait()
	}
	var zero T
	if len(q.items) == q.head {
		return zero, false
	}
	v := q.items[q.head]
	q.items[q.head] = zero // release the reference for GC
	q.head++
	// Compact once the dead prefix dominates, keeping Pop amortized O(1)
	// without unbounded growth.
	if q.head > q.capacity && q.head*2 >= len(q.items) {
		q.items = append(q.items[:0], q.items[q.head:]...)
		q.head = 0
	}
	return v, true
}

// Len returns the number of queued items.
func (q *FIFO[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items) - q.head
}

// Close stops admission and wakes every blocked Pop. Already-queued items
// remain poppable: closing drains, it does not discard.
func (q *FIFO[T]) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.nonEmpty.Broadcast()
}
