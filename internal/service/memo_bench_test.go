package service

import (
	"context"
	"testing"
	"time"

	"sdcgmres/internal/memo"
)

// benchSpec is the same small solve the memo tests use; big enough to be
// a real GMRES run, small enough to benchmark.
func benchSpec() JobSpec {
	return JobSpec{
		Matrix: MatrixSpec{Kind: "poisson", N: 12},
		Solver: SolverSpec{Kind: "gmres", InnerIters: 8, MaxOuter: 20},
	}
}

// BenchmarkFreshSolve is the denominator of the hit-path speedup in
// BENCH_memo.json: one full solver execution of the benchmark spec.
func BenchmarkFreshSolve(b *testing.B) {
	spec := benchSpec()
	if err := spec.Validate(); err != nil {
		b.Fatalf("validate: %v", err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RunSpec(context.Background(), &spec, nil, nil); err != nil {
			b.Fatalf("solve: %v", err)
		}
	}
}

// BenchmarkMemoHitSubmit is the numerator: the same spec served through
// the full Submit path against a warm cache — digest, lookup, unmarshal,
// terminal JobView. No queue, no worker, no solver.
func BenchmarkMemoHitSubmit(b *testing.B) {
	e := NewEngine(Config{Workers: 1, Memo: memo.New(memo.Config{})})
	e.Start()
	defer e.Shutdown(context.Background())
	v, err := e.Submit(benchSpec())
	if err != nil {
		b.Fatalf("submit: %v", err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		done, ok := e.Job(v.ID)
		if ok && done.State.Terminal() {
			if done.State != StateDone {
				b.Fatalf("warm-up job ended %s: %s", done.State, done.Error)
			}
			break
		}
		if time.Now().After(deadline) {
			b.Fatal("warm-up job never finished")
		}
		time.Sleep(time.Millisecond)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hit, err := e.Submit(benchSpec())
		if err != nil {
			b.Fatalf("submit: %v", err)
		}
		if !hit.FromMemo {
			b.Fatal("benchmark submit missed the cache")
		}
	}
}
