package service

import (
	"context"
	"strings"
	"testing"
)

func TestValidateAcceptsBuilders(t *testing.T) {
	for _, spec := range []JobSpec{
		PoissonJob(32),
		CircuitJob(500),
		ConvDiffJob(16),
		MatrixMarketJob("%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 4.0\n2 2 4.0\n"),
	} {
		if err := spec.Validate(); err != nil {
			t.Fatalf("builder spec invalid: %v", err)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		spec JobSpec
		want string
	}{
		{"no kind", JobSpec{}, "matrix kind missing"},
		{"bad kind", JobSpec{Matrix: MatrixSpec{Kind: "dense", N: 4}}, "unknown matrix kind"},
		{"oversize grid", JobSpec{Matrix: MatrixSpec{Kind: "poisson", N: MaxGridN + 1}}, "out of range"},
		{"tiny grid", JobSpec{Matrix: MatrixSpec{Kind: "poisson", N: 1}}, "out of range"},
		{"mm empty", JobSpec{Matrix: MatrixSpec{Kind: "mm"}}, "needs inline mm"},
		{"bad solver", JobSpec{Matrix: MatrixSpec{Kind: "poisson", N: 8}, Solver: SolverSpec{Kind: "sor"}}, "unknown solver"},
		{"cg fault", JobSpec{Matrix: MatrixSpec{Kind: "poisson", N: 8}, Solver: SolverSpec{Kind: "cg"}, Fault: &FaultSpec{Class: "large", At: 1}}, "has none"},
		{"cg detector", JobSpec{Matrix: MatrixSpec{Kind: "poisson", N: 8}, Solver: SolverSpec{Kind: "cg", Detector: true}}, "does not apply"},
		{"bad tol", JobSpec{Matrix: MatrixSpec{Kind: "poisson", N: 8}, Solver: SolverSpec{Tol: 1.5}}, "tol"},
		{"bad ortho", JobSpec{Matrix: MatrixSpec{Kind: "poisson", N: 8}, Solver: SolverSpec{Ortho: "gram"}}, "orthogonalization"},
		{"bad policy", JobSpec{Matrix: MatrixSpec{Kind: "poisson", N: 8}, Solver: SolverSpec{Policy: "qr"}}, "lsq policy"},
		{"bad bound", JobSpec{Matrix: MatrixSpec{Kind: "poisson", N: 8}, Solver: SolverSpec{Bound: "l1"}}, "bound"},
		{"bad response", JobSpec{Matrix: MatrixSpec{Kind: "poisson", N: 8}, Solver: SolverSpec{Response: "reboot"}}, "response"},
		{"bad precond", JobSpec{Matrix: MatrixSpec{Kind: "poisson", N: 8}, Solver: SolverSpec{Precond: "amg"}}, "preconditioner"},
		{"bad fault class", JobSpec{Matrix: MatrixSpec{Kind: "poisson", N: 8}, Fault: &FaultSpec{Class: "huge", At: 1}}, "fault class"},
		{"bad fault site", JobSpec{Matrix: MatrixSpec{Kind: "poisson", N: 8}, Fault: &FaultSpec{Class: "large", At: 0}}, "must be >= 1"},
		{"negative budget", JobSpec{Matrix: MatrixSpec{Kind: "poisson", N: 8}, TimeBudgetMS: -1}, "time_budget_ms"},
		{"huge outer", JobSpec{Matrix: MatrixSpec{Kind: "poisson", N: 8}, Solver: SolverSpec{MaxOuter: MaxOuterCap + 1}}, "max_outer"},
		{"huge inner", JobSpec{Matrix: MatrixSpec{Kind: "poisson", N: 8}, Solver: SolverSpec{InnerIters: MaxInnerCap + 1}}, "inner_iters"},
	}
	for _, c := range cases {
		err := c.spec.Validate()
		if err == nil {
			t.Fatalf("%s: expected error", c.name)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Fatalf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestParseFaultModelRoundTrip(t *testing.T) {
	for _, spec := range []string{"large", "slight", "tiny", "bitflip:63", "set:1.5", "scale:0.5"} {
		if _, err := ParseFaultModel(spec); err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
	}
	for _, spec := range []string{"", "huge", "bitflip:64", "set:x"} {
		if _, err := ParseFaultModel(spec); err == nil {
			t.Fatalf("%q should fail", spec)
		}
	}
}

func TestRunSpecFTGMRES(t *testing.T) {
	spec := PoissonJob(16)
	rec, err := RunSpec(context.Background(), &spec, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Converged {
		t.Fatalf("failure-free solve should converge: %+v", rec)
	}
	if rec.Solver != "ftgmres" || rec.Rows != 256 || rec.Problem != "poisson-16x16" {
		t.Fatalf("record: %+v", rec)
	}
	if len(rec.ResidualHistory) == 0 || rec.OuterIterations == 0 {
		t.Fatalf("missing history: %+v", rec)
	}
	if rec.ForwardError > 1e-4 {
		t.Fatalf("forward error %g too large for a clean solve", rec.ForwardError)
	}
}

func TestRunSpecWithFaultAndDetector(t *testing.T) {
	spec := PoissonJob(16)
	spec.Fault = &FaultSpec{Class: "large", At: 3}
	rec, err := RunSpec(context.Background(), &spec, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.FaultInjected || !rec.FaultFired {
		t.Fatalf("fault should fire: %+v", rec)
	}
	if rec.Detections == 0 {
		t.Fatalf("class-1 fault must be detected: %+v", rec)
	}
	if !rec.Converged {
		t.Fatalf("restart-inner response should still converge: %+v", rec)
	}
}

func TestRunSpecGMRESAndCG(t *testing.T) {
	gm := JobSpec{Matrix: MatrixSpec{Kind: "poisson", N: 12}, Solver: SolverSpec{Kind: "gmres", MaxOuter: 200}}
	rec, err := RunSpec(context.Background(), &gm, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Solver != "gmres" || !rec.Converged {
		t.Fatalf("gmres record: %+v", rec)
	}

	cg := JobSpec{Matrix: MatrixSpec{Kind: "poisson", N: 12}, Solver: SolverSpec{Kind: "cg", MaxOuter: 500}}
	rec, err = RunSpec(context.Background(), &cg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Solver != "cg" || !rec.Converged {
		t.Fatalf("cg record: %+v", rec)
	}
}

func TestRunSpecMatrixMarket(t *testing.T) {
	mm := "%%MatrixMarket matrix coordinate real general\n3 3 5\n1 1 4.0\n2 2 4.0\n3 3 4.0\n1 2 -1.0\n2 1 -1.0\n"
	spec := MatrixMarketJob(mm)
	rec, err := RunSpec(context.Background(), &spec, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Converged || rec.Rows != 3 {
		t.Fatalf("record: %+v", rec)
	}
}

func TestRunSpecCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	spec := PoissonJob(16)
	if _, err := RunSpec(ctx, &spec, nil, nil); err == nil {
		t.Fatal("canceled context should abort the solve")
	}
}
