package service

import (
	"net/http"
	"strconv"
)

// ErrorEnvelope is the unified v1 error body: every non-2xx response
// from cmd/solved carries exactly this shape, so clients branch on one
// stable machine-readable code instead of parsing prose.
//
//	{"code": "throttled", "message": "...", "retry_after_seconds": 3}
//
// Codes by status: 400 invalid_request, 404 not_found, 409 conflict,
// 413 payload_too_large, 429 throttled, 503 unavailable, 5xx internal.
// RetryAfterSeconds is set only on throttled responses and mirrors the
// Retry-After header (which is kept for plain HTTP clients).
type ErrorEnvelope struct {
	Code              string `json:"code"`
	Message           string `json:"message"`
	RetryAfterSeconds int    `json:"retry_after_seconds,omitempty"`
}

// Error implements error so clients can surface a decoded envelope
// directly.
func (e *ErrorEnvelope) Error() string { return e.Code + ": " + e.Message }

// errorCode maps an HTTP status to its stable envelope code.
func errorCode(status int) string {
	switch status {
	case http.StatusBadRequest:
		return "invalid_request"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusConflict:
		return "conflict"
	case http.StatusRequestEntityTooLarge:
		return "payload_too_large"
	case http.StatusTooManyRequests:
		return "throttled"
	case http.StatusServiceUnavailable:
		return "unavailable"
	}
	if status >= 500 {
		return "internal"
	}
	return "error"
}

// writeError emits the unified error envelope for a non-2xx status.
func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, ErrorEnvelope{Code: errorCode(status), Message: msg})
}

// writeThrottled emits a 429 envelope carrying the retry advice in both
// the Retry-After header (for plain HTTP clients) and the body (for
// envelope-aware ones).
func writeThrottled(w http.ResponseWriter, retryAfterSec int, msg string) {
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterSec))
	writeJSON(w, http.StatusTooManyRequests, ErrorEnvelope{
		Code:              "throttled",
		Message:           msg,
		RetryAfterSeconds: retryAfterSec,
	})
}
