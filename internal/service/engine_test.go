package service

import (
	"context"
	"errors"
	"testing"
	"time"

	"sdcgmres/internal/kernel"
	"sdcgmres/internal/trace"
)

// stubRunner returns a Runner with behaviour keyed on the spec's matrix
// size: N == hangN blocks until the job context ends; anything else sleeps
// briefly and succeeds.
func stubRunner(hangN int, delay time.Duration) Runner {
	return func(ctx context.Context, spec *JobSpec, _ *trace.Recorder, _ *kernel.Pool) (*SolveRecord, error) {
		if spec.Matrix.N == hangN {
			<-ctx.Done()
			return nil, ctx.Err()
		}
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return &SolveRecord{Problem: "stub", Solver: spec.SolverKind(), Converged: true}, nil
	}
}

func waitTerminal(t *testing.T, e *Engine, id string, within time.Duration) JobView {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		v, ok := e.Job(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if v.State.Terminal() {
			return v
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s not terminal within %v", id, within)
	return JobView{}
}

func TestEngineCompletesJob(t *testing.T) {
	e := NewEngine(Config{Workers: 2, Runner: stubRunner(-1, time.Millisecond)})
	e.Start()
	defer e.Shutdown(context.Background())

	v, err := e.Submit(PoissonJob(8))
	if err != nil {
		t.Fatal(err)
	}
	if v.State != StateQueued {
		t.Fatalf("state after submit: %s", v.State)
	}
	v = waitTerminal(t, e, v.ID, time.Second)
	if v.State != StateDone || v.Result == nil || !v.Result.Converged {
		t.Fatalf("job: %+v", v)
	}
	if v.StartedAt == nil || v.FinishedAt == nil {
		t.Fatalf("timestamps missing: %+v", v)
	}
	if got := e.Metrics().JobsCompleted.Value(); got != 1 {
		t.Fatalf("completed counter = %d", got)
	}
}

func TestEngineRejectsInvalidSpec(t *testing.T) {
	e := NewEngine(Config{Workers: 1, Runner: stubRunner(-1, 0)})
	e.Start()
	defer e.Shutdown(context.Background())
	if _, err := e.Submit(JobSpec{}); err == nil {
		t.Fatal("invalid spec must be rejected")
	}
	if e.Metrics().JobsAccepted.Value() != 0 {
		t.Fatal("invalid spec must not count as accepted")
	}
}

func TestEngineTimeoutDoesNotKillNeighbors(t *testing.T) {
	e := NewEngine(Config{Workers: 2, DefaultBudget: 40 * time.Millisecond, Runner: stubRunner(9, time.Millisecond)})
	e.Start()
	defer e.Shutdown(context.Background())

	hung, err := e.Submit(PoissonJob(9)) // stub hangs on N == 9
	if err != nil {
		t.Fatal(err)
	}
	good, err := e.Submit(PoissonJob(8))
	if err != nil {
		t.Fatal(err)
	}
	gv := waitTerminal(t, e, good.ID, time.Second)
	if gv.State != StateDone {
		t.Fatalf("neighbor: %+v", gv)
	}
	hv := waitTerminal(t, e, hung.ID, time.Second)
	if hv.State != StateTimedOut {
		t.Fatalf("hung job: %+v", hv)
	}
	if e.Metrics().JobsTimedOut.Value() != 1 {
		t.Fatalf("timed-out counter = %d", e.Metrics().JobsTimedOut.Value())
	}
}

func TestEnginePanicIsolated(t *testing.T) {
	e := NewEngine(Config{Workers: 1, Runner: func(ctx context.Context, spec *JobSpec, _ *trace.Recorder, _ *kernel.Pool) (*SolveRecord, error) {
		panic("solver exploded")
	}})
	e.Start()
	defer e.Shutdown(context.Background())
	v, err := e.Submit(PoissonJob(8))
	if err != nil {
		t.Fatal(err)
	}
	v = waitTerminal(t, e, v.ID, time.Second)
	if v.State != StateFailed {
		t.Fatalf("panicked job: %+v", v)
	}
	// The engine survived: submit another.
	if _, err := e.Submit(PoissonJob(8)); err != nil {
		t.Fatalf("engine died with the guest: %v", err)
	}
}

func TestEngineCancelQueuedAndRunning(t *testing.T) {
	e := NewEngine(Config{Workers: 1, QueueDepth: 8, DefaultBudget: time.Minute, Runner: stubRunner(9, time.Millisecond)})
	e.Start()
	defer e.Shutdown(context.Background())

	running, err := e.Submit(PoissonJob(9)) // occupies the only worker
	if err != nil {
		t.Fatal(err)
	}
	queued, err := e.Submit(PoissonJob(8))
	if err != nil {
		t.Fatal(err)
	}
	// Cancel the queued job before a worker reaches it.
	if _, err := e.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	// Cancel the running job; its guest is abandoned.
	for {
		v, _ := e.Job(running.ID)
		if v.State == StateRunning {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := e.Cancel(running.ID); err != nil {
		t.Fatal(err)
	}
	rv := waitTerminal(t, e, running.ID, time.Second)
	if rv.State != StateCanceled {
		t.Fatalf("running job after cancel: %+v", rv)
	}
	qv := waitTerminal(t, e, queued.ID, time.Second)
	if qv.State != StateCanceled {
		t.Fatalf("queued job after cancel: %+v", qv)
	}
	if _, err := e.Cancel(running.ID); !errors.Is(err, ErrNotCancelable) {
		t.Fatalf("double cancel: %v", err)
	}
	if _, err := e.Cancel("job-999999"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("unknown cancel: %v", err)
	}
}

func TestEngineShutdownDrainsQueue(t *testing.T) {
	e := NewEngine(Config{Workers: 2, QueueDepth: 32, Runner: stubRunner(-1, 5*time.Millisecond)})
	e.Start()
	var ids []string
	for i := 0; i < 10; i++ {
		v, err := e.Submit(PoissonJob(8))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, v.ID)
	}
	if err := e.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		v, ok := e.Job(id)
		if !ok || v.State != StateDone {
			t.Fatalf("job %s not drained: %+v", id, v)
		}
	}
	if _, err := e.Submit(PoissonJob(8)); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit after shutdown: %v", err)
	}
}

func TestEngineShutdownDeadlineAbortsRunning(t *testing.T) {
	e := NewEngine(Config{Workers: 1, DefaultBudget: time.Minute, Runner: stubRunner(9, 0)})
	e.Start()
	v, err := e.Submit(PoissonJob(9)) // hangs until its context dies
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := e.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("shutdown: %v", err)
	}
	jv, _ := e.Job(v.ID)
	if !jv.State.Terminal() {
		t.Fatalf("hung job after hard shutdown: %+v", jv)
	}
}

func TestEngineRetentionEvicts(t *testing.T) {
	e := NewEngine(Config{Workers: 1, Retain: 3, QueueDepth: 32, Runner: stubRunner(-1, 0)})
	e.Start()
	var ids []string
	for i := 0; i < 8; i++ {
		v, err := e.Submit(PoissonJob(8))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, v.ID)
		waitTerminal(t, e, v.ID, time.Second)
	}
	e.Shutdown(context.Background())
	if _, ok := e.Job(ids[0]); ok {
		t.Fatal("oldest job should have been evicted")
	}
	if _, ok := e.Job(ids[len(ids)-1]); !ok {
		t.Fatal("newest job should be retained")
	}
	if len(e.Jobs()) != 3 {
		t.Fatalf("retained %d jobs, want 3", len(e.Jobs()))
	}
}
