package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"sdcgmres/internal/memo"
	"sdcgmres/internal/trace"
)

// SpecDigest returns the canonical content digest of the solve a job
// spec describes: sha256 over the normalized matrix, solver, and fault
// coordinates, truncated to 16 hex characters like campaign unit IDs.
//
// Two specs share a digest exactly when they provably produce the same
// SolveRecord, so the digest is a safe memoization key: every default
// is normalized to its resolved value (an empty ortho and "mgs" hash
// identically), inline Matrix Market payloads hash by content, and
// detector-dependent knobs collapse when the detector is off. Fields
// that only steer scheduling — tenant, class, deadline, time budget —
// are deliberately excluded: they change when a solve runs, never what
// it computes.
func SpecDigest(spec *JobSpec) string {
	h := sha256.New()
	m := spec.Matrix
	fmt.Fprintf(h, "v1|%s|", m.Kind)
	switch m.Kind {
	case "mm":
		sum := sha256.Sum256([]byte(m.MM))
		fmt.Fprintf(h, "mm=%x|", sum[:])
	case "convdiff":
		cx, cy := m.CX, m.CY
		if cx == 0 && cy == 0 {
			cx, cy = 10, -5 // BuildMatrix's default convection field
		}
		fmt.Fprintf(h, "n=%d|cx=%g|cy=%g|", m.N, cx, cy)
	default:
		fmt.Fprintf(h, "n=%d|", m.N)
	}
	s := spec.Solver
	ortho := s.Ortho
	if ortho == "" {
		ortho = "mgs"
	}
	policy := s.Policy
	if policy == "" {
		policy = "fallback"
	}
	pre := s.Precond
	if pre == "" {
		pre = "none"
	}
	bound, resp := s.Bound, s.Response
	if bound == "" {
		bound = "frobenius"
	}
	if resp == "" {
		resp = "warn"
	}
	if !s.Detector {
		bound, resp = "-", "-"
	}
	fmt.Fprintf(h, "%s|inner=%d|outer=%d|tol=%g|%s|%s|det=%t|%s|%s|%s|robust=%t|",
		spec.SolverKind(),
		defaultInt(s.InnerIters, 25), defaultInt(s.MaxOuter, 60), defaultFloat(s.Tol, 1e-8),
		ortho, policy, s.Detector, bound, resp, pre, s.RobustFirstSolve)
	if f := spec.Fault; f != nil {
		step := f.Step
		if step == "" {
			step = "first"
		}
		fmt.Fprintf(h, "fault=%s|at=%d|%s", f.Class, f.At, step)
	} else {
		io.WriteString(h, "fault=-")
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// MemoEnabled reports whether the engine consults a solve cache.
func (e *Engine) MemoEnabled() bool { return e.cfg.Memo != nil }

// MemoStats snapshots the solve cache counters (zeros without a cache).
func (e *Engine) MemoStats() memo.Stats { return e.cfg.Memo.Stats() }

// WriteMemoMetrics appends the solved_memo_* series to a /metrics
// response. No-op without a cache.
func (e *Engine) WriteMemoMetrics(w io.Writer) { e.cfg.Memo.WritePrometheus(w) }

// completeFromMemo turns a submission-time cache hit into a terminal
// job: the cached SolveRecord is decoded and the job is born StateDone,
// never entering a queue — so a hit spends no QoS token-bucket token
// and no worker, the property the admission-before-cache ordering
// exists to guarantee. Returns ok=false on an undecodable payload, in
// which case the caller falls through to a fresh execution.
func (e *Engine) completeFromMemo(spec JobSpec, cid, key string, raw []byte) (JobView, bool) {
	rec := new(SolveRecord)
	if err := json.Unmarshal(raw, rec); err != nil {
		return JobView{}, false
	}
	now := time.Now()
	j := &Job{
		id:        fmt.Sprintf("job-%06d", e.nextID.Add(1)),
		spec:      spec,
		cid:       cid,
		memoKey:   key,
		state:     StateDone,
		result:    rec,
		fromMemo:  true,
		submitted: now,
		finished:  now,
	}
	if e.cfg.TraceCapacity > 0 {
		tr := trace.NewRecorder(e.cfg.TraceCapacity)
		tr.Correlate(cid)
		tr.MemoHit(key, "hit", len(raw))
		j.trace = tr
	}
	e.mu.Lock()
	e.jobs[j.id] = j
	e.mu.Unlock()
	// A memoized job is accepted and completed; it does not feed the
	// solve-latency histograms (no solve ran, and Retry-After advice
	// must keep estimating real executions) nor the detector/fault
	// aggregates (no detector work happened in this process).
	e.cfg.Metrics.JobsAccepted.Inc()
	e.cfg.Metrics.JobsCompleted.Inc()
	if l := e.cfg.Log; l != nil {
		l.Info(e.jobCtx(j), "job served from memo cache", "key", key, "bytes", len(raw))
	}
	e.retire(j)
	return j.View(), true
}

// memoHow renders a memo outcome for trace events and job views.
func memoHow(o memo.Outcome) string {
	if o == memo.Shared {
		return "shared"
	}
	return "hit"
}
