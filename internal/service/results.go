package service

import (
	"compress/gzip"
	"net/http"
	"strings"

	"sdcgmres/internal/store"
	"sdcgmres/internal/store/analyze"
)

// maxQueryLimit caps one results page; clients page with offset/limit.
const maxQueryLimit = 10000

// defaultQueryLimit applies when a query names no limit, so an unbounded
// scrape cannot accidentally serialize a million-record store.
const defaultQueryLimit = 1000

// gzipResponseWriter routes the body through a gzip stream while headers
// and status pass straight to the wrapped writer.
type gzipResponseWriter struct {
	http.ResponseWriter
	gz *gzip.Writer
}

func (g *gzipResponseWriter) Write(p []byte) (int, error) { return g.gz.Write(p) }

// negotiateGzip wraps w in a gzip encoder when the request advertises
// Accept-Encoding: gzip. The returned finish func must run after the
// handler writes its body (flushes the stream); it is a no-op when no
// encoding was negotiated.
func negotiateGzip(w http.ResponseWriter, r *http.Request) (http.ResponseWriter, func()) {
	accepts := false
	for _, part := range strings.Split(r.Header.Get("Accept-Encoding"), ",") {
		enc := strings.TrimSpace(part)
		if semi := strings.IndexByte(enc, ';'); semi >= 0 {
			// A quality value of 0 is a refusal ("gzip;q=0").
			q := strings.TrimSpace(enc[semi+1:])
			enc = strings.TrimSpace(enc[:semi])
			if q == "q=0" || strings.HasPrefix(q, "q=0.0") {
				continue
			}
		}
		if enc == "gzip" || enc == "*" {
			accepts = true
			break
		}
	}
	if !accepts {
		return w, func() {}
	}
	w.Header().Set("Content-Encoding", "gzip")
	w.Header().Add("Vary", "Accept-Encoding")
	gz := gzip.NewWriter(w)
	return &gzipResponseWriter{ResponseWriter: w, gz: gz}, func() { _ = gz.Close() }
}

// resolveCampaignName maps a /v1/campaigns/{id} path element to a store
// campaign name: manager IDs ("cmp-000001") resolve to their manifest's
// name; anything else is taken as a store campaign name directly — which
// is how fleet-executed campaigns (ingested by a coordinator, never
// submitted over HTTP) stay queryable.
func (s *Server) resolveCampaignName(id string) string {
	if s.opts.Campaigns != nil {
		if view, ok := s.opts.Campaigns.Campaign(id); ok {
			return view.Name
		}
	}
	return id
}

// resultsQueryRequest is the POST /v1/results/query body: a store.Query
// plus the v1 paging convention. Cursor resumes the page a previous
// response's next_cursor named and wins over the query's offset field
// when both are present.
//
// Deprecated paging: the offset field is accepted for one release;
// clients should switch to cursor.
type resultsQueryRequest struct {
	store.Query
	Cursor string `json:"cursor,omitempty"`
}

// resultsQueryResponse is a results page. NextCursor resumes after this
// page and is absent on the last one.
type resultsQueryResponse struct {
	store.QueryResult
	NextCursor string `json:"next_cursor,omitempty"`
}

// handleResultsQuery serves POST /v1/results/query: a filtered,
// snapshot-consistent page of records. Paging follows the v1 limit/cursor
// convention (limit defaults to 1000, capped at 10000; page with the
// response's next_cursor).
func (s *Server) handleResultsQuery(w http.ResponseWriter, r *http.Request) {
	var req resultsQueryRequest
	if !s.decodeBody(w, r, "results query", &req) {
		return
	}
	q := req.Query
	if req.Cursor != "" {
		pos, err := parseCursor(req.Cursor)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		q.Offset = pos
	}
	if q.Limit <= 0 {
		q.Limit = defaultQueryLimit
	}
	if q.Limit > maxQueryLimit {
		q.Limit = maxQueryLimit
	}
	if q.Campaign != "" {
		q.Campaign = s.resolveCampaignName(q.Campaign)
	}
	res := s.opts.Store.Snapshot().Query(q)
	resp := resultsQueryResponse{QueryResult: res}
	if next := q.Offset + len(res.Records); next < res.Total {
		resp.NextCursor = encodeCursor(next)
	}
	gw, finish := negotiateGzip(w, r)
	defer finish()
	writeJSON(gw, http.StatusOK, resp)
}

// campaignStatsResponse is the GET /v1/campaigns/{id}/stats payload.
type campaignStatsResponse struct {
	Stats *analyze.CampaignStats `json:"stats"`
	// Diff compares this campaign against the ?diff= baseline campaign
	// (regressions = this campaign is significantly slower).
	Diff *analyze.Diff `json:"diff,omitempty"`
}

// handleCampaignStats serves the server-side paper statistics for one
// campaign, computed from a single store snapshot. With ?diff=<campaign>,
// the response also carries a statistical comparison against that baseline.
func (s *Server) handleCampaignStats(w http.ResponseWriter, r *http.Request) {
	name := s.resolveCampaignName(r.PathValue("id"))
	sn := s.opts.Store.Snapshot()
	stats, err := analyze.Campaign(sn, name)
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	resp := campaignStatsResponse{Stats: stats}
	if base := r.URL.Query().Get("diff"); base != "" {
		d, err := analyze.DiffCampaigns(sn, s.resolveCampaignName(base), name)
		if err != nil {
			writeError(w, http.StatusNotFound, err.Error())
			return
		}
		resp.Diff = d
	}
	gw, finish := negotiateGzip(w, r)
	defer finish()
	writeJSON(gw, http.StatusOK, resp)
}
