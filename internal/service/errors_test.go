package service

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"sdcgmres/internal/store"
)

// decodeEnvelope requires resp to carry a v1 error envelope with the
// expected status and code and a non-empty message, and returns it.
func decodeEnvelope(t *testing.T, resp *http.Response, wantStatus int, wantCode string) ErrorEnvelope {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("status = %d, want %d", resp.StatusCode, wantStatus)
	}
	var env ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("body is not an error envelope: %v", err)
	}
	if env.Code != wantCode {
		t.Fatalf("code = %q, want %q (message %q)", env.Code, wantCode, env.Message)
	}
	if env.Message == "" {
		t.Fatal("envelope has an empty message")
	}
	return env
}

// TestErrorEnvelopeEveryHandler drives every non-2xx path the server can
// produce and requires the unified envelope from each one.
func TestErrorEnvelopeEveryHandler(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	defer st.Close()

	engine := NewEngine(Config{Workers: 1, QueueDepth: 1, DefaultBudget: time.Minute,
		Runner: stubRunner(9, 0), TraceCapacity: 64})
	engine.Start()
	defer engine.Shutdown(context.Background())
	campaigns := NewCampaignManager(CampaignManagerConfig{Dir: dir, Metrics: engine.Metrics()})
	ts := httptest.NewServer(NewServer(engine, ServerOptions{
		Campaigns:    campaigns,
		Store:        st,
		MaxBodyBytes: 1 << 20,
	}))
	defer ts.Close()

	post := func(path, body string, hdr map[string]string) *http.Response {
		t.Helper()
		req, _ := http.NewRequest(http.MethodPost, ts.URL+path, strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		return resp
	}
	get := func(path string) *http.Response {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return resp
	}
	del := func(path string) *http.Response {
		t.Helper()
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("DELETE %s: %v", path, err)
		}
		return resp
	}

	// 400 invalid_request: undecodable job spec.
	decodeEnvelope(t, post("/v1/jobs", "{not json", nil), http.StatusBadRequest, "invalid_request")
	// 400 invalid_request: decodable but invalid spec.
	decodeEnvelope(t, post("/v1/jobs", "{}", nil), http.StatusBadRequest, "invalid_request")
	// 404 not_found: unknown job, unknown trace, unknown campaign, unknown stats.
	decodeEnvelope(t, get("/v1/jobs/job-404"), http.StatusNotFound, "not_found")
	decodeEnvelope(t, get("/v1/jobs/job-404/trace"), http.StatusNotFound, "not_found")
	decodeEnvelope(t, get("/v1/campaigns/cmp-404"), http.StatusNotFound, "not_found")
	decodeEnvelope(t, get("/v1/campaigns/cmp-404/trace"), http.StatusNotFound, "not_found")
	decodeEnvelope(t, get("/v1/campaigns/cmp-404/stats"), http.StatusNotFound, "not_found")
	decodeEnvelope(t, del("/v1/jobs/job-404"), http.StatusNotFound, "not_found")
	decodeEnvelope(t, del("/v1/campaigns/cmp-404"), http.StatusNotFound, "not_found")
	// 400 invalid_request: bad campaign manifest, bad results cursor.
	decodeEnvelope(t, post("/v1/campaigns", "{}", nil), http.StatusBadRequest, "invalid_request")
	decodeEnvelope(t, post("/v1/results/query", `{"cursor":"garbage"}`, nil), http.StatusBadRequest, "invalid_request")

	// Fill the engine: one hanging job on the worker, one in the queue.
	spec := `{"matrix":{"kind":"poisson","n":9},"solver":{"kind":"gmres"}}`
	var running JobView
	if resp := post("/v1/jobs", spec, nil); true {
		if err := json.NewDecoder(resp.Body).Decode(&running); err != nil {
			t.Fatalf("decode accepted job: %v", err)
		}
		resp.Body.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if v, ok := engine.Job(running.ID); ok && v.State == StateRunning {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	post("/v1/jobs", spec, nil).Body.Close() // occupies the queue slot

	// 429 throttled: the queue is full; advice must appear in both the
	// Retry-After header and the envelope body, and agree.
	resp := post("/v1/jobs", spec, nil)
	retryHeader := resp.Header.Get("Retry-After")
	env := decodeEnvelope(t, resp, http.StatusTooManyRequests, "throttled")
	if retryHeader == "" {
		t.Fatal("429 lost its Retry-After header")
	}
	if sec, err := strconv.Atoi(retryHeader); err != nil || sec != env.RetryAfterSeconds {
		t.Fatalf("Retry-After header %q disagrees with envelope retry_after_seconds %d", retryHeader, env.RetryAfterSeconds)
	}
	if env.RetryAfterSeconds < 1 {
		t.Fatalf("retry_after_seconds = %d, want >= 1", env.RetryAfterSeconds)
	}

	// 409 conflict: cancel the running job once, then cancel again.
	if resp := del("/v1/jobs/" + running.ID); resp.StatusCode != http.StatusOK {
		t.Fatalf("first cancel status = %d", resp.StatusCode)
	}
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if v, ok := engine.Job(running.ID); ok && v.State.Terminal() {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	decodeEnvelope(t, del("/v1/jobs/"+running.ID), http.StatusConflict, "conflict")

	// 413 payload_too_large: a body over MaxBodyBytes.
	big := strings.Repeat("x", 2<<20)
	decodeEnvelope(t, post("/v1/jobs", `{"pad":"`+big+`"}`, nil),
		http.StatusRequestEntityTooLarge, "payload_too_large")

	// Cancel whatever still hangs so the deferred drain returns promptly.
	for _, v := range engine.Jobs() {
		if !v.State.Terminal() {
			_, _ = engine.Cancel(v.ID)
		}
	}
}

// TestErrorEnvelopeDraining covers the 503 unavailable path: a drained
// engine refuses new work with the envelope.
func TestErrorEnvelopeDraining(t *testing.T) {
	engine := NewEngine(Config{Workers: 1, Runner: stubRunner(-1, 0)})
	engine.Start()
	if err := engine.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	ts := httptest.NewServer(NewServer(engine, ServerOptions{}))
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"matrix":{"kind":"poisson","n":8},"solver":{"kind":"gmres"}}`))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	decodeEnvelope(t, resp, http.StatusServiceUnavailable, "unavailable")
}

// TestTracePageLimitCursor pins the v1 paging convention on the trace
// endpoints: opt-in limit, X-Next-Cursor resume, envelope on bad input.
func TestTracePageLimitCursor(t *testing.T) {
	// The real runner: a stub emits no trace events to page through.
	engine := NewEngine(Config{Workers: 1, TraceCapacity: 256})
	engine.Start()
	defer engine.Shutdown(context.Background())
	ts := httptest.NewServer(NewServer(engine, ServerOptions{}))
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"matrix":{"kind":"poisson","n":8},"solver":{"kind":"gmres"}}`))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	var view JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatalf("decode: %v", err)
	}
	resp.Body.Close()
	waitTerminal(t, engine, view.ID, 5*time.Second)

	full := fetchLines(t, ts.URL+"/v1/jobs/"+view.ID+"/trace")
	if len(full) < 2 {
		t.Fatalf("trace too short to page: %d events", len(full))
	}

	// Page through with limit=1 and require the concatenation to equal
	// the full stream.
	var paged []string
	cursor := ""
	for {
		u := ts.URL + "/v1/jobs/" + view.ID + "/trace?limit=1"
		if cursor != "" {
			u += "&cursor=" + cursor
		}
		r, err := http.Get(u)
		if err != nil {
			t.Fatalf("get page: %v", err)
		}
		var page []string
		for _, line := range fetchBodyLines(t, r) {
			page = append(page, line)
		}
		if len(page) > 1 {
			t.Fatalf("limit=1 page carried %d events", len(page))
		}
		paged = append(paged, page...)
		cursor = r.Header.Get("X-Next-Cursor")
		if cursor == "" {
			break
		}
	}
	if strings.Join(paged, "\n") != strings.Join(full, "\n") {
		t.Fatalf("paged stream differs from full stream (%d vs %d events)", len(paged), len(full))
	}

	// Malformed paging inputs answer with the envelope.
	for _, q := range []string{"?limit=abc", "?limit=0", "?cursor=nope"} {
		r, err := http.Get(ts.URL + "/v1/jobs/" + view.ID + "/trace" + q)
		if err != nil {
			t.Fatalf("get %s: %v", q, err)
		}
		decodeEnvelope(t, r, http.StatusBadRequest, "invalid_request")
	}
}

func fetchLines(t *testing.T, url string) []string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("get %s: %v", url, err)
	}
	return fetchBodyLines(t, resp)
}

func fetchBodyLines(t *testing.T, resp *http.Response) []string {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	var lines []string
	for _, line := range strings.Split(string(raw), "\n") {
		if strings.TrimSpace(line) != "" {
			lines = append(lines, line)
		}
	}
	return lines
}
