package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sdcgmres/internal/campaign"
	"sdcgmres/internal/kernel"
	"sdcgmres/internal/trace"
)

// testCampaignManifest is a seconds-scale sweep: Poisson 8×8 calibrated to
// 5 outers × 6 inners = 30 sites, strided to 5 units.
func testCampaignManifest() campaign.Manifest {
	return campaign.Manifest{
		Name:     "svc-test",
		Problems: []campaign.ProblemSpec{{Kind: "poisson", N: 8, InnerIters: 6, TargetOuter: 5}},
		Models:   []string{"slight"},
		Steps:    []string{"first"},
		Stride:   7,
	}
}

// waitTerminal polls until the campaign leaves its non-terminal states.
func waitCampaignTerminal(t *testing.T, m *CampaignManager, id string) CampaignView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		v, ok := m.Campaign(id)
		if !ok {
			t.Fatalf("campaign %s vanished", id)
		}
		switch v.State {
		case CampaignDone, CampaignFailed, CampaignCanceled:
			return v
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("campaign %s did not reach a terminal state", id)
	return CampaignView{}
}

func TestCampaignManagerLifecycleAndResume(t *testing.T) {
	met := NewMetrics()
	m := NewCampaignManager(CampaignManagerConfig{Dir: t.TempDir(), Workers: 2, Metrics: met})

	v, err := m.Submit(testCampaignManifest())
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if v.State != CampaignCompiling {
		t.Fatalf("fresh campaign state = %q, want compiling", v.State)
	}
	final := waitCampaignTerminal(t, m, v.ID)
	if final.State != CampaignDone {
		t.Fatalf("campaign finished %q (%s), want done", final.State, final.Error)
	}
	if final.Progress.Total == 0 || final.Progress.Done != final.Progress.Total {
		t.Fatalf("progress: %+v", final.Progress)
	}
	if final.Progress.Executed != final.Progress.Total || final.Progress.Skipped != 0 {
		t.Fatalf("first run must execute everything: %+v", final.Progress)
	}
	if _, err := m.Cancel(v.ID); !errors.Is(err, ErrCampaignTerminal) {
		t.Fatalf("cancel terminal campaign: %v", err)
	}

	// Resubmitting the identical manifest resumes the same journal: every
	// unit is skipped, none executed.
	v2, err := m.Submit(testCampaignManifest())
	if err != nil {
		t.Fatal(err)
	}
	if v2.Journal != final.Journal {
		t.Fatalf("same manifest must share a journal: %q vs %q", v2.Journal, final.Journal)
	}
	final2 := waitCampaignTerminal(t, m, v2.ID)
	if final2.State != CampaignDone {
		t.Fatalf("resumed campaign finished %q (%s)", final2.State, final2.Error)
	}
	if final2.Progress.Skipped != final.Progress.Total || final2.Progress.Executed != 0 {
		t.Fatalf("resume must skip every journaled unit: %+v", final2.Progress)
	}

	snap := met.Snapshot()
	if snap["campaigns_started"] != 2 || snap["campaigns_completed"] != 2 {
		t.Fatalf("campaign counters: %+v", snap)
	}
	if snap["campaign_units_executed"] != int64(final.Progress.Total) ||
		snap["campaign_units_skipped"] != int64(final.Progress.Total) {
		t.Fatalf("unit counters: %+v", snap)
	}
}

func TestCampaignHTTPEndpoints(t *testing.T) {
	m := NewCampaignManager(CampaignManagerConfig{Dir: t.TempDir(), Workers: 2})
	engine := NewEngine(Config{Workers: 1, Runner: func(ctx context.Context, spec *JobSpec, _ *trace.Recorder, _ *kernel.Pool) (*SolveRecord, error) {
		return &SolveRecord{}, nil
	}})
	engine.Start()
	defer engine.Shutdown(context.Background())
	srv := NewServer(engine, ServerOptions{Campaigns: m})

	post := func(body string) *httptest.ResponseRecorder {
		req := httptest.NewRequest("POST", "/v1/campaigns", strings.NewReader(body))
		rr := httptest.NewRecorder()
		srv.ServeHTTP(rr, req)
		return rr
	}

	// Malformed JSON and invalid manifests are 400s.
	if rr := post("{"); rr.Code != http.StatusBadRequest {
		t.Fatalf("truncated body: %d", rr.Code)
	}
	if rr := post(`{"name":"x"}`); rr.Code != http.StatusBadRequest {
		t.Fatalf("invalid manifest: %d", rr.Code)
	}
	if rr := post(`{"name":"x","bogus":1}`); rr.Code != http.StatusBadRequest {
		t.Fatalf("unknown field: %d", rr.Code)
	}

	raw, err := json.Marshal(testCampaignManifest())
	if err != nil {
		t.Fatal(err)
	}
	rr := post(string(raw))
	if rr.Code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", rr.Code, rr.Body)
	}
	var view CampaignView
	if err := json.Unmarshal(rr.Body.Bytes(), &view); err != nil {
		t.Fatal(err)
	}
	if view.ID == "" || view.Hash == "" || view.Journal == "" {
		t.Fatalf("view: %+v", view)
	}
	waitCampaignTerminal(t, m, view.ID)

	// GET by ID.
	req := httptest.NewRequest("GET", "/v1/campaigns/"+view.ID, nil)
	rr = httptest.NewRecorder()
	srv.ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("get: %d", rr.Code)
	}
	var got CampaignView
	if err := json.Unmarshal(rr.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.State != CampaignDone {
		t.Fatalf("state: %+v", got)
	}

	// GET list.
	req = httptest.NewRequest("GET", "/v1/campaigns", nil)
	rr = httptest.NewRecorder()
	srv.ServeHTTP(rr, req)
	var list struct {
		Campaigns []CampaignView `json:"campaigns"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Campaigns) != 1 || list.Campaigns[0].ID != view.ID {
		t.Fatalf("list: %+v", list)
	}

	// DELETE terminal → 409; unknown → 404.
	req = httptest.NewRequest("DELETE", "/v1/campaigns/"+view.ID, nil)
	rr = httptest.NewRecorder()
	srv.ServeHTTP(rr, req)
	if rr.Code != http.StatusConflict {
		t.Fatalf("cancel terminal: %d", rr.Code)
	}
	req = httptest.NewRequest("GET", "/v1/campaigns/nope", nil)
	rr = httptest.NewRecorder()
	srv.ServeHTTP(rr, req)
	if rr.Code != http.StatusNotFound {
		t.Fatalf("unknown: %d", rr.Code)
	}

	// Without a manager the routes are absent entirely.
	bare := NewServer(engine, ServerOptions{})
	req = httptest.NewRequest("GET", "/v1/campaigns", nil)
	rr = httptest.NewRecorder()
	bare.ServeHTTP(rr, req)
	if rr.Code != http.StatusNotFound {
		t.Fatalf("campaign routes mounted without a manager: %d", rr.Code)
	}
}

func TestCampaignManagerShutdown(t *testing.T) {
	m := NewCampaignManager(CampaignManagerConfig{Dir: t.TempDir(), Workers: 2})
	v, err := m.Submit(testCampaignManifest())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	final, ok := m.Campaign(v.ID)
	if !ok {
		t.Fatal("campaign lost")
	}
	if final.State != CampaignDone && final.State != CampaignCanceled {
		t.Fatalf("post-shutdown state %q (%s)", final.State, final.Error)
	}
	if _, err := m.Submit(testCampaignManifest()); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit after shutdown: %v", err)
	}
}
