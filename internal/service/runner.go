package service

import (
	"context"
	"fmt"
	"math"
	"strings"
	"time"

	"sdcgmres/internal/core"
	"sdcgmres/internal/detect"
	"sdcgmres/internal/fault"
	"sdcgmres/internal/gallery"
	"sdcgmres/internal/kernel"
	"sdcgmres/internal/krylov"
	"sdcgmres/internal/precond"
	"sdcgmres/internal/sparse"
	"sdcgmres/internal/trace"
	"sdcgmres/internal/vec"
)

// SolveRecord is the canonical machine-readable result of one solve. The
// service stores it per job, and cmd/sdcrun -json emits exactly the same
// schema, so CLI and service outputs are interchangeable.
type SolveRecord struct {
	// Problem identifies the system: generator name or "mm".
	Problem string `json:"problem"`
	Rows    int    `json:"rows"`
	Cols    int    `json:"cols"`
	NNZ     int    `json:"nnz"`
	// Solver is the solver kind that ran ("ftgmres", "gmres", "cg").
	Solver    string `json:"solver"`
	Converged bool   `json:"converged"`
	// FinalResidual is the last relative residual (explicitly computed for
	// FT-GMRES).
	FinalResidual float64 `json:"final_residual"`
	// OuterIterations is the reliable iteration count (plain iteration
	// count for gmres/cg).
	OuterIterations int `json:"outer_iterations"`
	// InnerIterations is the total unreliable inner work (0 for gmres/cg).
	InnerIterations int `json:"inner_iterations"`
	InnerHalts      int `json:"inner_halts,omitempty"`
	InnerRestarts   int `json:"inner_restarts,omitempty"`
	SandboxFailures int `json:"sandbox_failures,omitempty"`
	Detections      int `json:"detections,omitempty"`
	DetectorChecked int `json:"detector_checked,omitempty"`
	// FaultInjected reports whether an injector was armed; FaultFired
	// whether it actually struck.
	FaultInjected bool `json:"fault_injected,omitempty"`
	FaultFired    bool `json:"fault_fired,omitempty"`
	// ForwardError is max_i |x_i − 1|: the service always solves the
	// consistent system b = A·1, so the true solution is known and silent
	// failures are measurable.
	ForwardError    float64   `json:"forward_error"`
	ResidualHistory []float64 `json:"residual_history,omitempty"`
	ElapsedMS       float64   `json:"elapsed_ms"`
}

// RecordFromCore converts an FT-GMRES result into the canonical record.
func RecordFromCore(problem string, a *sparse.CSR, res *core.Result, elapsed time.Duration) *SolveRecord {
	rec := &SolveRecord{
		Problem:         problem,
		Rows:            a.Rows(),
		Cols:            a.Cols(),
		NNZ:             a.NNZ(),
		Solver:          "ftgmres",
		Converged:       res.Converged,
		FinalResidual:   res.FinalResidual,
		OuterIterations: res.Stats.OuterIterations,
		InnerIterations: res.Stats.InnerIterations,
		InnerHalts:      res.Stats.InnerHalts,
		InnerRestarts:   res.Stats.InnerRestarts,
		SandboxFailures: res.Stats.SandboxFailures,
		Detections:      res.Stats.Detections,
		DetectorChecked: res.Stats.DetectorChecked,
		ForwardError:    forwardError(res.X),
		ResidualHistory: res.ResidualHistory,
		ElapsedMS:       float64(elapsed) / float64(time.Millisecond),
	}
	return rec
}

// forwardError is max_i |x_i − 1| against the known all-ones solution.
func forwardError(x []float64) float64 {
	worst := 0.0
	for _, v := range x {
		d := math.Abs(v - 1)
		if d > worst || math.IsNaN(d) {
			worst = d
		}
	}
	return worst
}

// BuildMatrix materializes a validated MatrixSpec.
func BuildMatrix(m MatrixSpec) (*sparse.CSR, string, error) {
	switch m.Kind {
	case "poisson":
		return gallery.Poisson2D(m.N), fmt.Sprintf("poisson-%dx%d", m.N, m.N), nil
	case "circuit":
		return gallery.CircuitDCOP(gallery.DefaultCircuitDCOPConfig(m.N)), fmt.Sprintf("circuit-dcop-%d", m.N), nil
	case "convdiff":
		cx, cy := m.CX, m.CY
		if cx == 0 && cy == 0 {
			cx, cy = 10, -5
		}
		return gallery.ConvectionDiffusion2D(m.N, cx, cy), fmt.Sprintf("convdiff-%dx%d", m.N, m.N), nil
	case "mm":
		a, err := sparse.ReadMatrixMarket(strings.NewReader(m.MM))
		if err != nil {
			return nil, "", fmt.Errorf("service: bad matrix market payload: %w", err)
		}
		if a.Rows() != a.Cols() {
			return nil, "", fmt.Errorf("service: matrix must be square, got %dx%d", a.Rows(), a.Cols())
		}
		return a, "mm", nil
	}
	return nil, "", fmt.Errorf("service: unknown matrix kind %q", m.Kind)
}

// RunSpec is the engine's default Runner: build the system, solve it under
// the job's context, and report the canonical record. The caller (the
// worker pool) provides panic isolation and the wall-clock budget via the
// sandbox, so RunSpec itself stays straight-line. A non-nil tr captures
// the solve's full flight-recorder stream (residuals, coefficients,
// detector verdicts, fault strikes, sandbox outcomes). A non-nil pool
// runs the solver's kernels on persistent workers; records are bitwise
// identical for every pool width.
func RunSpec(ctx context.Context, spec *JobSpec, tr *trace.Recorder, pool *kernel.Pool) (*SolveRecord, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	a, name, err := BuildMatrix(spec.Matrix)
	if err != nil {
		return nil, err
	}
	b := make([]float64, a.Rows())
	a.MatVec(b, vec.Ones(a.Cols()))

	var hooks []krylov.CoeffHook
	var inj *fault.Injector
	if spec.Fault != nil {
		model, _ := ParseFaultModel(spec.Fault.Class)
		stepName := spec.Fault.Step
		if stepName == "" {
			stepName = "first"
		}
		step, _ := ParseStep(stepName)
		inj = fault.NewInjector(model, fault.Site{AggregateInner: spec.Fault.At, Step: step})
		inj.SetRecorder(tr)
		hooks = append(hooks, inj)
	}

	start := time.Now()
	var rec *SolveRecord
	switch spec.SolverKind() {
	case "ftgmres":
		rec, err = runFTGMRES(ctx, spec, a, name, b, hooks, tr, pool)
	case "gmres":
		rec, err = runGMRES(ctx, spec, a, name, b, hooks, tr, pool)
	case "cg":
		rec, err = runCG(ctx, spec, a, name, b, tr, pool)
	default:
		return nil, fmt.Errorf("service: unknown solver kind %q", spec.Solver.Kind)
	}
	if err != nil {
		return nil, err
	}
	rec.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	if inj != nil {
		rec.FaultInjected = true
		rec.FaultFired = inj.Fired()
	}
	return rec, nil
}

func runFTGMRES(ctx context.Context, spec *JobSpec, a *sparse.CSR, name string, b []float64, hooks []krylov.CoeffHook, tr *trace.Recorder, pool *kernel.Pool) (*SolveRecord, error) {
	cfg, err := coreConfig(spec, a, hooks)
	if err != nil {
		return nil, err
	}
	cfg.Recorder = tr
	cfg.Pool = pool.WithRecorder(tr)
	start := time.Now()
	res, err := core.New(a, cfg).SolveCtx(ctx, b, nil)
	if err != nil {
		return nil, err
	}
	return RecordFromCore(name, a, res, time.Since(start)), nil
}

// coreConfig translates a SolverSpec into a core.Config.
func coreConfig(spec *JobSpec, a *sparse.CSR, hooks []krylov.CoeffHook) (core.Config, error) {
	s := spec.Solver
	ortho, err := parseOrtho(s.Ortho)
	if err != nil {
		return core.Config{}, err
	}
	policy, err := parsePolicy(s.Policy)
	if err != nil {
		return core.Config{}, err
	}
	pre, err := parsePrecond(s.Precond)
	if err != nil {
		return core.Config{}, err
	}
	cfg := core.Config{
		MaxOuter: defaultInt(s.MaxOuter, 60),
		OuterTol: defaultFloat(s.Tol, 1e-8),
		Inner: core.InnerConfig{
			Iterations:       defaultInt(s.InnerIters, 25),
			Ortho:            ortho,
			Policy:           policy,
			Hooks:            hooks,
			RobustFirstSolve: s.RobustFirstSolve,
		},
	}
	if pre != nil {
		m, err := pre(a)
		if err != nil {
			return core.Config{}, err
		}
		cfg.Inner.Precond = m
	}
	if s.Detector {
		kind, err := parseBound(s.Bound)
		if err != nil {
			return core.Config{}, err
		}
		resp, err := parseResponse(s.Response)
		if err != nil {
			return core.Config{}, err
		}
		cfg.Detector = core.DetectorConfig{Enabled: true, Kind: kind, Response: resp}
	}
	return cfg, nil
}

func runGMRES(ctx context.Context, spec *JobSpec, a *sparse.CSR, name string, b []float64, hooks []krylov.CoeffHook, tr *trace.Recorder, pool *kernel.Pool) (*SolveRecord, error) {
	s := spec.Solver
	ortho, _ := parseOrtho(s.Ortho)
	policy, _ := parsePolicy(s.Policy)
	var det *detect.Detector
	if s.Detector {
		kind, err := parseBound(s.Bound)
		if err != nil {
			return nil, err
		}
		det = detect.NewDetector(a, kind)
		hooks = append(hooks, detect.Traced(det, tr))
	}
	opts := krylov.Options{
		MaxIter:  defaultInt(s.MaxOuter, 60),
		Tol:      defaultFloat(s.Tol, 1e-8),
		Ortho:    ortho,
		Policy:   policy,
		Hooks:    hooks,
		Recorder: tr,
		Pool:     pool.WithRecorder(tr),
	}
	res, err := krylov.GMRESCtx(ctx, a, b, nil, opts)
	if err != nil {
		return nil, err
	}
	rec := &SolveRecord{
		Problem:         name,
		Rows:            a.Rows(),
		Cols:            a.Cols(),
		NNZ:             a.NNZ(),
		Solver:          "gmres",
		Converged:       res.Converged,
		FinalResidual:   res.FinalResidual,
		OuterIterations: res.Iterations,
		ForwardError:    forwardError(res.X),
		ResidualHistory: res.ResidualHistory,
	}
	if det != nil {
		ds := det.Stats()
		rec.Detections = ds.Violations
		rec.DetectorChecked = ds.Checked
	}
	return rec, nil
}

func runCG(ctx context.Context, spec *JobSpec, a *sparse.CSR, name string, b []float64, tr *trace.Recorder, pool *kernel.Pool) (*SolveRecord, error) {
	s := spec.Solver
	res, err := krylov.CGCtx(ctx, a, b, nil, krylov.CGOptions{Options: krylov.Options{
		MaxIter:  defaultInt(s.MaxOuter, 60),
		Tol:      defaultFloat(s.Tol, 1e-8),
		Recorder: tr,
		Pool:     pool.WithRecorder(tr),
	}})
	if err != nil {
		return nil, err
	}
	return &SolveRecord{
		Problem:         name,
		Rows:            a.Rows(),
		Cols:            a.Cols(),
		NNZ:             a.NNZ(),
		Solver:          "cg",
		Converged:       res.Converged,
		FinalResidual:   res.FinalResidual,
		OuterIterations: res.Iterations,
		ForwardError:    forwardError(res.X),
		ResidualHistory: res.ResidualHistory,
	}, nil
}

func parseBound(s string) (detect.BoundKind, error) {
	switch s {
	case "", "frobenius":
		return detect.FrobeniusBound, nil
	case "spectral":
		return detect.SpectralBound, nil
	}
	return 0, fmt.Errorf("service: unknown detector bound %q", s)
}

func parseResponse(s string) (core.Response, error) {
	switch s {
	case "", "warn":
		return core.ResponseWarn, nil
	case "halt":
		return core.ResponseHaltInner, nil
	case "restart":
		return core.ResponseRestartInner, nil
	}
	return 0, fmt.Errorf("service: unknown detector response %q", s)
}

// parsePrecond returns a preconditioner factory (nil for "none").
func parsePrecond(s string) (func(*sparse.CSR) (krylov.Preconditioner, error), error) {
	switch s {
	case "", "none":
		return nil, nil
	case "jacobi":
		return func(a *sparse.CSR) (krylov.Preconditioner, error) {
			m, err := precond.NewJacobi(a)
			return m, err
		}, nil
	case "ssor":
		return func(a *sparse.CSR) (krylov.Preconditioner, error) {
			m, err := precond.NewSSOR(a, 1.0)
			return m, err
		}, nil
	case "ilu0":
		return func(a *sparse.CSR) (krylov.Preconditioner, error) {
			m, err := precond.NewILU0(a)
			return m, err
		}, nil
	}
	return nil, fmt.Errorf("service: unknown preconditioner %q", s)
}

func defaultInt(v, def int) int {
	if v <= 0 {
		return def
	}
	return v
}

func defaultFloat(v, def float64) float64 {
	if v <= 0 {
		return def
	}
	return v
}
