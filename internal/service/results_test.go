package service

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"sdcgmres/internal/campaign"
	"sdcgmres/internal/expt"
	"sdcgmres/internal/store"
	"sdcgmres/internal/store/analyze"
	"sdcgmres/internal/trace"
)

// resultsCompiled calibrates the shared results-endpoint campaign once per
// binary: poisson 8×8, one model, one step, stride 3 — 10 units.
var (
	resultsOnce sync.Once
	resultsCmp  *campaign.Compiled
	resultsErr  error
)

func resultsCompiled(t *testing.T) *campaign.Compiled {
	t.Helper()
	resultsOnce.Do(func() {
		resultsCmp, resultsErr = campaign.Compile(campaign.Manifest{
			Name:     "results-test",
			Problems: []campaign.ProblemSpec{{Kind: "poisson", N: 8, InnerIters: 6, TargetOuter: 5}},
			Models:   []string{"slight"},
			Steps:    []string{"first"},
			Stride:   3,
		})
	})
	if resultsErr != nil {
		t.Fatalf("compile: %v", resultsErr)
	}
	return resultsCmp
}

// fabricate builds a valid record for each compiled unit with outer-iteration
// overhead extra above the converged baseline.
func fabricate(c *campaign.Compiled, extra int) map[string]campaign.Record {
	recs := make(map[string]campaign.Record, len(c.Units))
	for _, u := range c.Units {
		recs[u.ID] = campaign.Record{
			ID:   u.ID,
			Unit: u,
			Point: expt.SweepPoint{
				AggregateInner: u.Site,
				OuterIters:     5 + extra + u.Site%2,
				Converged:      true,
				Detections:     u.Site % 2,
				FaultFired:     true,
			},
			Outcome:   campaign.OutcomeOK,
			ElapsedMS: 1,
		}
	}
	return recs
}

// resultsServer mounts the production server over a store pre-loaded with
// the fabricated campaign (and a +2-outer-slower copy under another name for
// diff queries).
func resultsServer(t *testing.T) (*httptest.Server, *store.Store) {
	t.Helper()
	c := resultsCompiled(t)
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	if _, err := st.IngestAll("results-test", fabricate(c, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := st.IngestAll("results-slow", fabricate(c, 2)); err != nil {
		t.Fatal(err)
	}
	engine := NewEngine(Config{Workers: 1, DefaultBudget: time.Minute})
	engine.Start()
	t.Cleanup(func() { engine.Shutdown(context.Background()) })
	ts := httptest.NewServer(NewServer(engine, ServerOptions{Store: st}))
	t.Cleanup(ts.Close)
	return ts, st
}

// postQuery POSTs a results query and decodes the page. Accept-Encoding is
// left to the default Go client (transparent gzip), so handlers are
// exercised through the compressed path and the tests still see plain JSON.
func postQuery(t *testing.T, url string, q store.Query) store.QueryResult {
	t.Helper()
	body, _ := json.Marshal(q)
	resp, err := http.Post(url+"/v1/results/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("query: status %d: %s", resp.StatusCode, raw)
	}
	var res store.QueryResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	return res
}

func TestResultsQueryEndpoint(t *testing.T) {
	ts, _ := resultsServer(t)
	c := resultsCompiled(t)

	res := postQuery(t, ts.URL, store.Query{Campaign: "results-test"})
	if res.Total != len(c.Units) || len(res.Records) != len(c.Units) {
		t.Fatalf("full page: total %d records %d, want %d", res.Total, len(res.Records), len(c.Units))
	}
	for i := 1; i < len(res.Records); i++ {
		if res.Records[i].Record.Unit.Site <= res.Records[i-1].Record.Unit.Site {
			t.Fatalf("records not site-ordered at %d", i)
		}
	}

	// Pagination: limit bounds the page, Total still counts everything.
	page := postQuery(t, ts.URL, store.Query{Campaign: "results-test", Limit: 3})
	if page.Total != len(c.Units) || len(page.Records) != 3 {
		t.Fatalf("limited page: total %d records %d", page.Total, len(page.Records))
	}
	rest := postQuery(t, ts.URL, store.Query{Campaign: "results-test", Offset: 3, Limit: 1000})
	if len(page.Records)+len(rest.Records) != len(c.Units) {
		t.Fatalf("offset page: %d + %d != %d", len(page.Records), len(rest.Records), len(c.Units))
	}

	// Site-range filter.
	ranged := postQuery(t, ts.URL, store.Query{Campaign: "results-test", SiteMin: 4, SiteMax: 10})
	for _, r := range ranged.Records {
		if r.Record.Unit.Site < 4 || r.Record.Unit.Site > 10 {
			t.Fatalf("site filter leaked site %d", r.Record.Unit.Site)
		}
	}
	if ranged.Total == 0 || ranged.Total == len(c.Units) {
		t.Fatalf("site filter total %d", ranged.Total)
	}

	// No campaign filter: both campaigns' records.
	all := postQuery(t, ts.URL, store.Query{})
	if all.Total != 2*len(c.Units) {
		t.Fatalf("unfiltered total %d, want %d", all.Total, 2*len(c.Units))
	}

	// Unknown campaign: empty page, not an error.
	if res := postQuery(t, ts.URL, store.Query{Campaign: "nope"}); res.Total != 0 {
		t.Fatalf("unknown campaign total %d", res.Total)
	}

	// Malformed body: 400.
	resp, err := http.Post(ts.URL+"/v1/results/query", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed query: status %d", resp.StatusCode)
	}
}

// TestResultsQueryGzip pins the negotiated encoding: an explicit
// Accept-Encoding: gzip gets a gzip body with the right headers, a q=0
// refusal gets identity, and both decode to the same page.
func TestResultsQueryGzip(t *testing.T) {
	ts, _ := resultsServer(t)
	body, _ := json.Marshal(store.Query{Campaign: "results-test"})
	// DisableCompression stops the transport from transparently gunzipping,
	// so the test sees the wire encoding.
	client := &http.Client{Transport: &http.Transport{DisableCompression: true}}

	fetch := func(accept string) (*http.Response, []byte) {
		t.Helper()
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/results/query", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		if accept != "" {
			req.Header.Set("Accept-Encoding", accept)
		}
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, raw
	}

	resp, raw := fetch("gzip")
	if resp.Header.Get("Content-Encoding") != "gzip" {
		t.Fatalf("Content-Encoding %q, want gzip", resp.Header.Get("Content-Encoding"))
	}
	if !strings.Contains(resp.Header.Get("Vary"), "Accept-Encoding") {
		t.Fatalf("Vary %q lacks Accept-Encoding", resp.Header.Get("Vary"))
	}
	gz, err := gzip.NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("body not gzip: %v", err)
	}
	plain, err := io.ReadAll(gz)
	if err != nil {
		t.Fatal(err)
	}
	var gzres store.QueryResult
	if err := json.Unmarshal(plain, &gzres); err != nil {
		t.Fatalf("decoded gzip body invalid: %v", err)
	}

	resp, raw = fetch("gzip;q=0")
	if enc := resp.Header.Get("Content-Encoding"); enc != "" {
		t.Fatalf("q=0 still encoded %q", enc)
	}
	var idres store.QueryResult
	if err := json.Unmarshal(raw, &idres); err != nil {
		t.Fatalf("identity body invalid: %v", err)
	}
	if gzres.Total != idres.Total || len(gzres.Records) != len(idres.Records) {
		t.Fatalf("gzip page != identity page: %d/%d vs %d/%d",
			gzres.Total, len(gzres.Records), idres.Total, len(idres.Records))
	}
}

func TestCampaignStatsEndpoint(t *testing.T) {
	ts, _ := resultsServer(t)
	c := resultsCompiled(t)

	get := func(path string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, raw
	}

	resp, raw := get("/v1/campaigns/results-test/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: status %d: %s", resp.StatusCode, raw)
	}
	var sr struct {
		Stats *analyze.CampaignStats `json:"stats"`
		Diff  *analyze.Diff          `json:"diff"`
	}
	if err := json.Unmarshal(raw, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Stats == nil || sr.Stats.Records != len(c.Units) || len(sr.Stats.Series) != 1 {
		t.Fatalf("stats payload: %+v", sr.Stats)
	}
	if sr.Diff != nil {
		t.Fatal("diff present without ?diff")
	}

	// ?diff=: results-slow runs +2 outers over the same sites, so the
	// comparison must flag this campaign direction correctly — slow vs base
	// regresses, base vs slow does not.
	resp, raw = get("/v1/campaigns/results-slow/stats?diff=results-test")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("diff stats: status %d: %s", resp.StatusCode, raw)
	}
	if err := json.Unmarshal(raw, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Diff == nil || sr.Diff.Regressions == 0 {
		t.Fatalf("slow-vs-base diff found no regressions: %+v", sr.Diff)
	}
	resp, raw = get("/v1/campaigns/results-test/stats?diff=results-slow")
	if err := json.Unmarshal(raw, &sr); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("base-vs-slow: status %d err %v", resp.StatusCode, err)
	}
	if sr.Diff == nil || sr.Diff.Regressions != 0 {
		t.Fatalf("base-vs-slow diff claims regressions: %+v", sr.Diff)
	}

	if resp, _ := get("/v1/campaigns/no-such-campaign/stats"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown campaign: status %d", resp.StatusCode)
	}
	if resp, _ := get("/v1/campaigns/results-test/stats?diff=no-such-campaign"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown diff baseline: status %d", resp.StatusCode)
	}
}

// TestStoreOffEndpointsAbsent pins that a server without a store serves 404
// for the results routes instead of panicking on a nil store.
func TestStoreOffEndpointsAbsent(t *testing.T) {
	engine := NewEngine(Config{Workers: 1, DefaultBudget: time.Minute})
	engine.Start()
	defer engine.Shutdown(context.Background())
	ts := httptest.NewServer(NewServer(engine, ServerOptions{}))
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/results/query", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("query without store: status %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/campaigns/x/stats")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("stats without store: status %d", resp.StatusCode)
	}
}

// TestCampaignManagerStoreWiring runs a real campaign through the manager
// with a store attached: every executed record lands in the warehouse, the
// stats endpoint resolves the manager ID to the manifest name, and a resumed
// (fully-skipped) rerun backfills idempotently.
func TestCampaignManagerStoreWiring(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	met := NewMetrics()
	m := NewCampaignManager(CampaignManagerConfig{Dir: t.TempDir(), Workers: 2, Metrics: met, Store: st})
	defer m.Shutdown(context.Background())

	v, err := m.Submit(testCampaignManifest())
	if err != nil {
		t.Fatal(err)
	}
	final := waitCampaignTerminal(t, m, v.ID)
	if final.State != CampaignDone {
		t.Fatalf("campaign finished %q (%s)", final.State, final.Error)
	}
	if got := st.Stats().Records; got != final.Progress.Total {
		t.Fatalf("store holds %d records, campaign ran %d units", got, final.Progress.Total)
	}
	if met.StoreIngestErrors.Value() != 0 {
		t.Fatalf("store ingest errors: %d", met.StoreIngestErrors.Value())
	}

	// Resume path: the rerun executes nothing; IngestAll replays the journal
	// into the store, which dedups every record.
	v2, err := m.Submit(testCampaignManifest())
	if err != nil {
		t.Fatal(err)
	}
	final2 := waitCampaignTerminal(t, m, v2.ID)
	if final2.Progress.Executed != 0 {
		t.Fatalf("rerun executed %d units", final2.Progress.Executed)
	}
	ss := st.Stats()
	if ss.Records != final.Progress.Total || ss.DupDropped != int64(final.Progress.Total) {
		t.Fatalf("backfill not idempotent: %+v", ss)
	}

	// The stats endpoint accepts the manager ID and the manifest name alike.
	engine := NewEngine(Config{Workers: 1, DefaultBudget: time.Minute})
	engine.Start()
	defer engine.Shutdown(context.Background())
	ts := httptest.NewServer(NewServer(engine, ServerOptions{Campaigns: m, Store: st}))
	defer ts.Close()
	for _, id := range []string{v.ID, testCampaignManifest().Name} {
		resp, err := http.Get(ts.URL + "/v1/campaigns/" + id + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		var sr struct {
			Stats *analyze.CampaignStats `json:"stats"`
		}
		err = json.NewDecoder(resp.Body).Decode(&sr)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || err != nil {
			t.Fatalf("stats via %q: status %d err %v", id, resp.StatusCode, err)
		}
		if sr.Stats == nil || sr.Stats.Records != final.Progress.Total {
			t.Fatalf("stats via %q: %+v", id, sr.Stats)
		}
	}
}

// TestTraceGzipEncoding pins gzip negotiation on the flight-recorder
// endpoints: the JSONL trace arrives gzip-encoded when asked for and still
// parses event for event.
func TestTraceGzipEncoding(t *testing.T) {
	engine := NewEngine(Config{Workers: 1, DefaultBudget: time.Minute, TraceCapacity: 1 << 12})
	engine.Start()
	defer engine.Shutdown(context.Background())
	ts := httptest.NewServer(NewServer(engine, ServerOptions{}))
	defer ts.Close()

	resp, view := postJob(t, ts.URL, PoissonJob(8))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	waitJobHTTP(t, ts.URL, view.ID, 30*time.Second)

	client := &http.Client{Transport: &http.Transport{DisableCompression: true}}
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs/"+view.ID+"/trace", nil)
	req.Header.Set("Accept-Encoding", "gzip")
	r, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusOK || r.Header.Get("Content-Encoding") != "gzip" {
		t.Fatalf("trace: status %d encoding %q", r.StatusCode, r.Header.Get("Content-Encoding"))
	}
	gz, err := gzip.NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("trace body not gzip: %v", err)
	}
	plain, err := io.ReadAll(gz)
	if err != nil {
		t.Fatal(err)
	}
	events, err := trace.ReadJSONL(bytes.NewReader(plain))
	if err != nil || len(events) == 0 {
		t.Fatalf("gunzipped trace unparseable: %v (%d events)", err, len(events))
	}
}

// postQueryPage POSTs a raw results-query body and decodes the full v1
// page shape (records plus next_cursor).
func postQueryPage(t *testing.T, url, body string) resultsQueryResponse {
	t.Helper()
	resp, err := http.Post(url+"/v1/results/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("query: status %d: %s", resp.StatusCode, raw)
	}
	var page resultsQueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		t.Fatal(err)
	}
	return page
}

// TestResultsQueryCursor pins the v1 limit/cursor convention: follow
// next_cursor to exhaustion and recover exactly the full result set, in
// order; the deprecated offset field keeps working for one release.
func TestResultsQueryCursor(t *testing.T) {
	ts, _ := resultsServer(t)
	c := resultsCompiled(t)

	full := postQuery(t, ts.URL, store.Query{Campaign: "results-test"})
	var paged []store.Rec
	body := `{"campaign":"results-test","limit":3}`
	for {
		page := postQueryPage(t, ts.URL, body)
		if len(page.Records) > 3 {
			t.Fatalf("limit=3 page carried %d records", len(page.Records))
		}
		if page.Total != len(c.Units) {
			t.Fatalf("page total %d, want %d", page.Total, len(c.Units))
		}
		paged = append(paged, page.Records...)
		if page.NextCursor == "" {
			break
		}
		body = fmt.Sprintf(`{"campaign":"results-test","limit":3,"cursor":%q}`, page.NextCursor)
	}
	if len(paged) != len(full.Records) {
		t.Fatalf("cursor walk got %d records, want %d", len(paged), len(full.Records))
	}
	for i := range paged {
		if paged[i].Record.ID != full.Records[i].Record.ID {
			t.Fatalf("cursor walk out of order at %d", i)
		}
	}

	// The last page must not hand out a cursor.
	last := postQueryPage(t, ts.URL, `{"campaign":"results-test","limit":100000}`)
	if last.NextCursor != "" {
		t.Fatalf("exhausted page still carries next_cursor %q", last.NextCursor)
	}

	// Deprecated offset still pages (one-release compatibility window).
	offsetPage := postQueryPage(t, ts.URL, `{"campaign":"results-test","offset":3,"limit":3}`)
	if len(offsetPage.Records) == 0 || offsetPage.Records[0].Record.ID != full.Records[3].Record.ID {
		t.Fatal("deprecated offset paging broke")
	}

	// Cursor wins over offset when both are present.
	both := postQueryPage(t, ts.URL, fmt.Sprintf(`{"campaign":"results-test","offset":99,"limit":3,"cursor":%q}`, "o3"))
	if len(both.Records) == 0 || both.Records[0].Record.ID != full.Records[3].Record.ID {
		t.Fatal("cursor did not win over offset")
	}
}
