// Package vec provides the dense-vector (BLAS level 1) kernels used by every
// solver in this repository: dot products, norms, axpy updates, scaling and
// copying, together with goroutine-parallel variants tuned for large vectors.
//
// Reproducibility is a first-class requirement for the SDC experiments: a
// fault-injection sweep must produce the same iteration counts on every run
// and at every GOMAXPROCS setting. The parallel reductions therefore use
// fixed chunk boundaries (independent of the number of workers) and sum the
// per-chunk partial results in index order, so the floating-point rounding is
// identical to a serial chunked evaluation.
package vec

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// ParallelThreshold is the vector length below which the serial kernels are
// always used; goroutine dispatch costs more than it saves for short vectors.
// internal/kernel shares the same cutoff for its pool-based variants, so the
// "sequential below, chunk-decomposed above" boundary is one number for the
// whole repository.
const ParallelThreshold = 1 << 15

// parallelThreshold is kept as the package-internal alias.
const parallelThreshold = ParallelThreshold

// ChunkSize is the fixed reduction granularity for parallel dot products and
// norms. Chunk boundaries depend only on the vector length, never on the
// worker count, which keeps results bitwise reproducible. internal/kernel
// reuses the same granularity so pool reductions round identically to this
// package's.
const ChunkSize = 1 << 12

// chunkSize is kept as the package-internal alias.
const chunkSize = ChunkSize

// maxWorkers caps goroutine fan-out for the parallel kernels.
func maxWorkers() int { return runtime.GOMAXPROCS(0) }

// New returns a zero vector of length n.
func New(n int) []float64 { return make([]float64, n) }

// Clone returns a copy of x.
func Clone(x []float64) []float64 {
	y := make([]float64, len(x))
	copy(y, x)
	return y
}

// Copy copies src into dst. It panics if the lengths differ, since a silent
// partial copy inside a solver is precisely the kind of bug this repository
// exists to detect.
func Copy(dst, src []float64) {
	checkLen("vec.Copy", len(dst), len(src))
	copy(dst, src)
}

// Fill sets every element of x to v.
func Fill(x []float64, v float64) {
	for i := range x {
		x[i] = v
	}
}

// Ones returns a length-n vector of ones.
func Ones(n int) []float64 {
	x := make([]float64, n)
	Fill(x, 1)
	return x
}

// Basis returns the length-n standard basis vector e_i.
func Basis(n, i int) []float64 {
	if i < 0 || i >= n {
		panic(fmt.Sprintf("vec.Basis: index %d out of range [0,%d)", i, n))
	}
	x := make([]float64, n)
	x[i] = 1
	return x
}

// Dot returns the inner product x·y using fixed-chunk deterministic
// accumulation. For vectors shorter than the parallel threshold the work is
// done serially; either way the rounding behaviour is identical.
func Dot(x, y []float64) float64 {
	checkLen("vec.Dot", len(x), len(y))
	if len(x) < parallelThreshold {
		return dotChunked(x, y)
	}
	return dotParallel(x, y)
}

// DotChunked computes the dot product serially but with the same fixed-chunk
// decomposition every parallel path uses, so results round identically to
// Dot at any length. internal/kernel applies it per chunk: a slice no longer
// than ChunkSize is a single unrolled-serial evaluation, which is exactly
// the per-chunk partial of the parallel reduction.
func DotChunked(x, y []float64) float64 {
	checkLen("vec.DotChunked", len(x), len(y))
	return dotChunked(x, y)
}

// dotChunked computes the dot product serially but with the same chunk
// decomposition the parallel path uses, so both paths round identically.
func dotChunked(x, y []float64) float64 {
	var total float64
	for lo := 0; lo < len(x); lo += chunkSize {
		hi := min(lo+chunkSize, len(x))
		total += dotSerial(x[lo:hi], y[lo:hi])
	}
	return total
}

// dotSerial is the innermost kernel, unrolled by four to expose instruction
// level parallelism without changing the documented chunk rounding contract
// (the unroll pattern is fixed, so it is still deterministic).
func dotSerial(x, y []float64) float64 {
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(x); i += 4 {
		s0 += x[i] * y[i]
		s1 += x[i+1] * y[i+1]
		s2 += x[i+2] * y[i+2]
		s3 += x[i+3] * y[i+3]
	}
	for ; i < len(x); i++ {
		s0 += x[i] * y[i]
	}
	return ((s0 + s1) + s2) + s3
}

func dotParallel(x, y []float64) float64 {
	nchunk := (len(x) + chunkSize - 1) / chunkSize
	partial := make([]float64, nchunk)
	workers := min(maxWorkers(), nchunk)
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				c := next
				next++
				mu.Unlock()
				if c >= nchunk {
					return
				}
				lo := c * chunkSize
				hi := min(lo+chunkSize, len(x))
				partial[c] = dotSerial(x[lo:hi], y[lo:hi])
			}
		}()
	}
	wg.Wait()
	var total float64
	for _, p := range partial {
		total += p
	}
	return total
}

// Norm2 returns the Euclidean norm ‖x‖₂. It rescales to avoid overflow and
// underflow in the squares, following the classic LAPACK dnrm2 strategy.
func Norm2(x []float64) float64 {
	scale, ssq := SumSquaresScaled(x)
	return scale * math.Sqrt(ssq)
}

// SumSquaresScaled runs the LAPACK dnrm2 rescaled sum-of-squares recurrence
// over x and returns the (scale, ssq) pair, with Σ x_i² = scale²·ssq and
// ‖x‖₂ = scale·sqrt(ssq). The pair stays finite for entries up to
// math.MaxFloat64 and loses nothing to underflow for denormals, which is the
// whole point of the rescaling. An all-zero (or empty) x returns (0, 1).
//
// internal/kernel evaluates this per fixed chunk and folds the pairs in
// index order with CombineSumSquares, so the parallel norm preserves the
// overflow/underflow behaviour at every worker count.
func SumSquaresScaled(x []float64) (scale, ssq float64) {
	scale, ssq = 0, 1
	for _, v := range x {
		if v == 0 {
			continue
		}
		a := math.Abs(v)
		if scale < a {
			r := scale / a
			ssq = 1 + ssq*r*r
			scale = a
		} else {
			r := a / scale
			ssq += r * r
		}
	}
	return scale, ssq
}

// CombineSumSquares folds two rescaled sum-of-squares pairs into one:
// the result represents the concatenation of the two ranges the pairs
// summarize. The (0, 1) pair is the identity, matching SumSquaresScaled's
// empty-range value. Folding chunk pairs left-to-right in index order gives
// a result that depends only on the chunk boundaries — never on which
// worker computed which chunk.
func CombineSumSquares(scale1, ssq1, scale2, ssq2 float64) (scale, ssq float64) {
	switch {
	case scale2 == 0:
		return scale1, ssq1
	case scale1 == 0:
		return scale2, ssq2
	case scale1 >= scale2:
		r := scale2 / scale1
		return scale1, ssq1 + ssq2*r*r
	default:
		r := scale1 / scale2
		return scale2, ssq2 + ssq1*r*r
	}
}

// Norm2Fast returns sqrt(Dot(x,x)). It is cheaper than Norm2 and adequate
// whenever the data is known to be well-scaled (e.g., unit basis vectors);
// the solvers use Norm2 on user data and Norm2Fast on internal quantities
// guarded by the detector.
func Norm2Fast(x []float64) float64 { return math.Sqrt(Dot(x, x)) }

// NormInf returns max_i |x_i|, or 0 for an empty vector. NaNs propagate: if
// any element is NaN the result is NaN, which callers rely on for fault
// screening.
func NormInf(x []float64) float64 {
	m := 0.0
	for _, v := range x {
		if math.IsNaN(v) {
			return math.NaN()
		}
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Norm1 returns Σ|x_i|.
func Norm1(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += math.Abs(v)
	}
	return s
}

// Axpy computes y += alpha*x in place.
func Axpy(alpha float64, x, y []float64) {
	checkLen("vec.Axpy", len(x), len(y))
	if alpha == 0 {
		return
	}
	if len(x) < parallelThreshold {
		axpySerial(alpha, x, y)
		return
	}
	parallelRange(len(x), func(lo, hi int) { axpySerial(alpha, x[lo:hi], y[lo:hi]) })
}

func axpySerial(alpha float64, x, y []float64) {
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scale computes x *= alpha in place.
func Scale(alpha float64, x []float64) {
	if len(x) < parallelThreshold {
		scaleSerial(alpha, x)
		return
	}
	parallelRange(len(x), func(lo, hi int) { scaleSerial(alpha, x[lo:hi]) })
}

func scaleSerial(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Add computes dst = x + y.
func Add(dst, x, y []float64) {
	checkLen("vec.Add", len(dst), len(x))
	checkLen("vec.Add", len(x), len(y))
	for i := range dst {
		dst[i] = x[i] + y[i]
	}
}

// Sub computes dst = x - y.
func Sub(dst, x, y []float64) {
	checkLen("vec.Sub", len(dst), len(x))
	checkLen("vec.Sub", len(x), len(y))
	for i := range dst {
		dst[i] = x[i] - y[i]
	}
}

// Neg negates x in place.
func Neg(x []float64) {
	for i := range x {
		x[i] = -x[i]
	}
}

// SumKahan returns Σ x_i with Kahan-Neumaier compensated summation: the
// rounding error of every addition is carried in a correction term, giving
// results accurate to a few ulps regardless of length or cancellation.
// The reliable phases use it where a sum itself is the safety check (e.g.
// the ABFT checksum verification), where ordinary accumulation error could
// masquerade as corruption.
func SumKahan(x []float64) float64 {
	var sum, comp float64
	for _, v := range x {
		t := sum + v
		if math.Abs(sum) >= math.Abs(v) {
			comp += (sum - t) + v
		} else {
			comp += (v - t) + sum
		}
		sum = t
	}
	return sum + comp
}

// DotKahan returns x·y with compensated accumulation of the products.
func DotKahan(x, y []float64) float64 {
	checkLen("vec.DotKahan", len(x), len(y))
	var sum, comp float64
	for i, v := range x {
		p := v * y[i]
		t := sum + p
		if math.Abs(sum) >= math.Abs(p) {
			comp += (sum - t) + p
		} else {
			comp += (p - t) + sum
		}
		sum = t
	}
	return sum + comp
}

// AllFinite reports whether every element of x is finite (neither NaN nor
// ±Inf). The detector uses it to screen vectors returned from the sandbox.
func AllFinite(x []float64) bool {
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// CountNonFinite returns the number of NaN or ±Inf elements in x.
func CountNonFinite(x []float64) int {
	n := 0
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			n++
		}
	}
	return n
}

// MaxAbsIndex returns the index of the element with the largest absolute
// value, or -1 for an empty vector.
func MaxAbsIndex(x []float64) int {
	idx := -1
	best := math.Inf(-1)
	for i, v := range x {
		if a := math.Abs(v); a > best {
			best = a
			idx = i
		}
	}
	return idx
}

// parallelRange splits [0,n) into near-equal worker ranges and runs f on each
// concurrently. It is used only for element-wise maps, where partitioning
// cannot change results.
func parallelRange(n int, f func(lo, hi int)) {
	workers := min(maxWorkers(), (n+chunkSize-1)/chunkSize)
	if workers <= 1 {
		f(0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		go func(lo, hi int) {
			defer wg.Done()
			f(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

func checkLen(op string, a, b int) {
	if a != b {
		panic(fmt.Sprintf("%s: length mismatch %d != %d", op, a, b))
	}
}
