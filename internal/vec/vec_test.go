package vec

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		scale = 1
	}
	return diff <= tol*scale
}

func TestNewAndFill(t *testing.T) {
	x := New(5)
	if len(x) != 5 {
		t.Fatalf("New(5) length = %d", len(x))
	}
	for _, v := range x {
		if v != 0 {
			t.Fatalf("New returned non-zero vector: %v", x)
		}
	}
	Fill(x, 3.5)
	for _, v := range x {
		if v != 3.5 {
			t.Fatalf("Fill(3.5) produced %v", x)
		}
	}
}

func TestOnes(t *testing.T) {
	x := Ones(7)
	for i, v := range x {
		if v != 1 {
			t.Fatalf("Ones()[%d] = %g", i, v)
		}
	}
}

func TestBasis(t *testing.T) {
	e := Basis(4, 2)
	want := []float64{0, 0, 1, 0}
	for i := range e {
		if e[i] != want[i] {
			t.Fatalf("Basis(4,2) = %v", e)
		}
	}
}

func TestBasisPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Basis(3,5) did not panic")
		}
	}()
	Basis(3, 5)
}

func TestCloneIndependence(t *testing.T) {
	x := []float64{1, 2, 3}
	y := Clone(x)
	y[0] = 99
	if x[0] != 1 {
		t.Fatal("Clone aliases original storage")
	}
}

func TestCopyLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Copy with mismatched lengths did not panic")
		}
	}()
	Copy(make([]float64, 2), make([]float64, 3))
}

func TestDotSmall(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 5, 6}
	if got := Dot(x, y); got != 32 {
		t.Fatalf("Dot = %g, want 32", got)
	}
}

func TestDotEmpty(t *testing.T) {
	if got := Dot(nil, nil); got != 0 {
		t.Fatalf("Dot(nil,nil) = %g", got)
	}
}

// TestDotDeterministicAcrossGOMAXPROCS verifies the central reproducibility
// contract: the same bits come out regardless of worker count.
func TestDotDeterministicAcrossGOMAXPROCS(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := parallelThreshold + 12345
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)
	var results []float64
	for _, p := range []int{1, 2, 4, 8} {
		runtime.GOMAXPROCS(p)
		results = append(results, Dot(x, y))
	}
	for i := 1; i < len(results); i++ {
		if results[i] != results[0] {
			t.Fatalf("Dot not deterministic: GOMAXPROCS variants %v", results)
		}
	}
	// And the parallel path must agree bitwise with the serial chunked path.
	if s := dotChunked(x, y); s != results[0] {
		t.Fatalf("parallel Dot %v != serial chunked %v", results[0], s)
	}
}

func TestDotMatchesNaiveWithinTolerance(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 10007
	x := make([]float64, n)
	y := make([]float64, n)
	var naive float64
	for i := range x {
		x[i] = rng.Float64() - 0.5
		y[i] = rng.Float64() - 0.5
		naive += x[i] * y[i]
	}
	if got := Dot(x, y); !almostEqual(got, naive, 1e-12) {
		t.Fatalf("Dot = %g, naive = %g", got, naive)
	}
}

func TestDotPropertySymmetric(t *testing.T) {
	f := func(a, b []float64) bool {
		n := min(len(a), len(b))
		x, y := Clone(a[:n]), Clone(b[:n])
		for i := range x {
			// Avoid overflowing products: Inf-Inf in the accumulator gives
			// NaN, and NaN != NaN would be a spurious failure.
			if math.IsNaN(x[i]) || math.Abs(x[i]) > 1e150 {
				x[i] = 1
			}
			if math.IsNaN(y[i]) || math.Abs(y[i]) > 1e150 {
				y[i] = 1
			}
		}
		return Dot(x, y) == Dot(y, x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDotPropertyLinear(t *testing.T) {
	f := func(raw []float64, alphaRaw int8) bool {
		alpha := float64(alphaRaw)
		n := len(raw) / 2
		x, y := Clone(raw[:n]), Clone(raw[n:2*n])
		for i := range x {
			// Keep values bounded so the linearity check is not drowned
			// in rounding noise from wild magnitudes.
			if math.IsNaN(x[i]) || math.IsInf(x[i], 0) || math.Abs(x[i]) > 1e6 {
				x[i] = 1
			}
			if math.IsNaN(y[i]) || math.IsInf(y[i], 0) || math.Abs(y[i]) > 1e6 {
				y[i] = 1
			}
		}
		ax := Clone(x)
		Scale(alpha, ax)
		return almostEqual(Dot(ax, y), alpha*Dot(x, y), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNorm2KnownValues(t *testing.T) {
	if got := Norm2([]float64{3, 4}); got != 5 {
		t.Fatalf("Norm2(3,4) = %g", got)
	}
	if got := Norm2(nil); got != 0 {
		t.Fatalf("Norm2(nil) = %g", got)
	}
}

func TestNorm2AvoidsOverflow(t *testing.T) {
	x := []float64{1e308, 1e308}
	got := Norm2(x)
	if math.IsInf(got, 0) || !almostEqual(got, 1e308*math.Sqrt2, 1e-12) {
		t.Fatalf("Norm2 overflow-prone: %g", got)
	}
}

func TestNorm2AvoidsUnderflow(t *testing.T) {
	x := []float64{1e-300, 1e-300}
	got := Norm2(x)
	if got == 0 || !almostEqual(got, 1e-300*math.Sqrt2, 1e-12) {
		t.Fatalf("Norm2 underflow-prone: %g", got)
	}
}

func TestNorm2PropertyScaling(t *testing.T) {
	f := func(raw []float64, s int8) bool {
		x := Clone(raw)
		for i := range x {
			if math.IsNaN(x[i]) || math.IsInf(x[i], 0) || math.Abs(x[i]) > 1e100 {
				x[i] = 0.5
			}
		}
		alpha := float64(s)
		sx := Clone(x)
		Scale(alpha, sx)
		return almostEqual(Norm2(sx), math.Abs(alpha)*Norm2(x), 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNorm2TriangleInequality(t *testing.T) {
	f := func(raw []float64) bool {
		n := len(raw) / 2
		x, y := Clone(raw[:n]), Clone(raw[n:2*n])
		for i := range x {
			if math.IsNaN(x[i]) || math.IsInf(x[i], 0) || math.Abs(x[i]) > 1e100 {
				x[i] = 1
			}
			if math.IsNaN(y[i]) || math.IsInf(y[i], 0) || math.Abs(y[i]) > 1e100 {
				y[i] = 1
			}
		}
		s := make([]float64, n)
		Add(s, x, y)
		return Norm2(s) <= Norm2(x)+Norm2(y)+1e-9*(1+Norm2(x)+Norm2(y))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNormInf(t *testing.T) {
	if got := NormInf([]float64{1, -7, 3}); got != 7 {
		t.Fatalf("NormInf = %g", got)
	}
	if got := NormInf([]float64{1, math.NaN()}); !math.IsNaN(got) {
		t.Fatalf("NormInf should propagate NaN, got %g", got)
	}
}

func TestNorm1(t *testing.T) {
	if got := Norm1([]float64{1, -2, 3}); got != 6 {
		t.Fatalf("Norm1 = %g", got)
	}
}

func TestAxpy(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{10, 20, 30}
	Axpy(2, x, y)
	want := []float64{12, 24, 36}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("Axpy result %v, want %v", y, want)
		}
	}
}

func TestAxpyZeroAlphaNoOp(t *testing.T) {
	y := []float64{1, math.NaN(), 3}
	x := []float64{5, 5, 5}
	Axpy(0, x, y)
	if y[0] != 1 || y[2] != 3 || !math.IsNaN(y[1]) {
		t.Fatalf("Axpy(0,...) modified y: %v", y)
	}
}

func TestAxpyLarge(t *testing.T) {
	n := parallelThreshold + 999
	x := Ones(n)
	y := make([]float64, n)
	Axpy(3, x, y)
	for i := 0; i < n; i += n / 17 {
		if y[i] != 3 {
			t.Fatalf("Axpy large: y[%d]=%g", i, y[i])
		}
	}
}

func TestScale(t *testing.T) {
	x := []float64{1, -2, 4}
	Scale(-0.5, x)
	want := []float64{-0.5, 1, -2}
	for i := range x {
		if x[i] != want[i] {
			t.Fatalf("Scale result %v", x)
		}
	}
}

func TestScaleLarge(t *testing.T) {
	n := parallelThreshold * 2
	x := Ones(n)
	Scale(2, x)
	for i := 0; i < n; i += n / 13 {
		if x[i] != 2 {
			t.Fatalf("Scale large: x[%d]=%g", i, x[i])
		}
	}
}

func TestAddSubNeg(t *testing.T) {
	x := []float64{1, 2}
	y := []float64{3, 5}
	s := make([]float64, 2)
	d := make([]float64, 2)
	Add(s, x, y)
	Sub(d, y, x)
	if s[0] != 4 || s[1] != 7 {
		t.Fatalf("Add = %v", s)
	}
	if d[0] != 2 || d[1] != 3 {
		t.Fatalf("Sub = %v", d)
	}
	Neg(d)
	if d[0] != -2 || d[1] != -3 {
		t.Fatalf("Neg = %v", d)
	}
}

func TestAllFinite(t *testing.T) {
	if !AllFinite([]float64{1, 2, 3}) {
		t.Fatal("AllFinite false for finite data")
	}
	if AllFinite([]float64{1, math.Inf(1)}) {
		t.Fatal("AllFinite true with +Inf")
	}
	if AllFinite([]float64{math.NaN()}) {
		t.Fatal("AllFinite true with NaN")
	}
}

func TestCountNonFinite(t *testing.T) {
	x := []float64{1, math.NaN(), math.Inf(-1), 4}
	if got := CountNonFinite(x); got != 2 {
		t.Fatalf("CountNonFinite = %d", got)
	}
}

func TestMaxAbsIndex(t *testing.T) {
	if got := MaxAbsIndex([]float64{1, -9, 3}); got != 1 {
		t.Fatalf("MaxAbsIndex = %d", got)
	}
	if got := MaxAbsIndex(nil); got != -1 {
		t.Fatalf("MaxAbsIndex(nil) = %d", got)
	}
}

func TestNorm2FastAgreesOnModerateData(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := make([]float64, 501)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	if !almostEqual(Norm2(x), Norm2Fast(x), 1e-12) {
		t.Fatalf("Norm2 %g vs Norm2Fast %g", Norm2(x), Norm2Fast(x))
	}
}

func TestCauchySchwarzProperty(t *testing.T) {
	f := func(raw []float64) bool {
		n := len(raw) / 2
		x, y := Clone(raw[:n]), Clone(raw[n:2*n])
		for i := range x {
			if math.IsNaN(x[i]) || math.IsInf(x[i], 0) || math.Abs(x[i]) > 1e50 {
				x[i] = 0.25
			}
			if math.IsNaN(y[i]) || math.IsInf(y[i], 0) || math.Abs(y[i]) > 1e50 {
				y[i] = 0.25
			}
		}
		lhs := math.Abs(Dot(x, y))
		rhs := Norm2(x) * Norm2(y)
		return lhs <= rhs*(1+1e-12)+1e-300
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDot(b *testing.B) {
	for _, n := range []int{1000, 100000} {
		b.Run(sizeName(n), func(b *testing.B) {
			x := Ones(n)
			y := Ones(n)
			b.SetBytes(int64(16 * n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = Dot(x, y)
			}
		})
	}
}

func BenchmarkAxpy(b *testing.B) {
	for _, n := range []int{1000, 100000} {
		b.Run(sizeName(n), func(b *testing.B) {
			x := Ones(n)
			y := make([]float64, n)
			b.SetBytes(int64(24 * n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Axpy(1e-9, x, y)
			}
		})
	}
}

func sizeName(n int) string {
	switch {
	case n >= 1000000:
		return "n1M"
	case n >= 100000:
		return "n100k"
	case n >= 10000:
		return "n10k"
	default:
		return "n1k"
	}
}

func TestSumKahanExactOnCancellation(t *testing.T) {
	// Classic compensated-summation stress: naive accumulation loses the
	// small term entirely; Kahan-Neumaier keeps it.
	x := []float64{1e100, 1.0, -1e100}
	if got := SumKahan(x); got != 1.0 {
		t.Fatalf("SumKahan = %g, want 1", got)
	}
	naive := 0.0
	for _, v := range x {
		naive += v
	}
	if naive == 1.0 {
		t.Skip("platform summed naively without error; stress invalid")
	}
}

func TestSumKahanMatchesNaiveOnBenignData(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	x := make([]float64, 1001)
	var naive float64
	for i := range x {
		x[i] = rng.NormFloat64()
		naive += x[i]
	}
	if got := SumKahan(x); !almostEqual(got, naive, 1e-12) {
		t.Fatalf("SumKahan %g vs naive %g", got, naive)
	}
}

func TestDotKahanAccuracy(t *testing.T) {
	// Products that cancel catastrophically: x·y = 1e100 - 1e100 + 4.
	x := []float64{1e50, -1e50, 2}
	y := []float64{1e50, 1e50, 2}
	if got := DotKahan(x, y); got != 4 {
		t.Fatalf("DotKahan = %g, want 4", got)
	}
}

func TestDotKahanLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	DotKahan(make([]float64, 2), make([]float64, 3))
}

func TestSumKahanEmpty(t *testing.T) {
	if SumKahan(nil) != 0 {
		t.Fatal("empty sum")
	}
}
