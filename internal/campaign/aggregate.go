package campaign

import (
	"fmt"
	"io"

	"sdcgmres/internal/expt"
)

// Series is one aggregated sweep curve: the campaign equivalent of a
// completed expt.Sweep call. Points are ordered by site; units missing from
// the journal yield zero-valued points, exactly as a cancelled expt.Sweep
// leaves its not-yet-run sites — so partial aggregates are distinguishable
// from complete ones.
type Series struct {
	// Key identifies the curve.
	Key SeriesKey
	// Problem is the calibrated problem instance.
	Problem *expt.Problem
	// Config is the sweep configuration shared by the series' units.
	Config expt.SweepConfig
	// Points holds one point per site, in site order.
	Points []expt.SweepPoint
	// Missing counts sites with no journal record yet.
	Missing int
	// Failed counts sites journaled as failed or timed-out.
	Failed int
}

// Complete reports whether every site of the series has a record.
func (s *Series) Complete() bool { return s.Missing == 0 }

// Summary condenses the series the way Section VII-E does.
func (s *Series) Summary() expt.Summary {
	return expt.Summarize(s.Problem, s.Config, s.Points)
}

// WriteCSV renders the series through the exact writer the one-shot expt
// path uses, so an aggregated campaign CSV is byte-identical to the CSV of
// an uninterrupted in-memory sweep over the same sites.
func (s *Series) WriteCSV(w io.Writer) error {
	return expt.WriteSweepCSV(w, s.Problem.Name, s.Config, s.Points)
}

// Aggregate folds journal records into the campaign's series, in the same
// deterministic order as the unit list (problems × detectors × steps ×
// models). Records for unit IDs outside the campaign are ignored.
func (c *Compiled) Aggregate(recs map[string]Record) ([]*Series, error) {
	var order []SeriesKey
	byKey := map[SeriesKey]*Series{}
	for _, u := range c.Units {
		key := u.SeriesKey()
		s, ok := byKey[key]
		if !ok {
			cfg, err := c.SweepConfig(u)
			if err != nil {
				return nil, err
			}
			s = &Series{Key: key, Problem: c.Problems[u.Problem], Config: cfg}
			byKey[key] = s
			order = append(order, key)
		}
		var pt expt.SweepPoint
		rec, ok := recs[u.ID]
		switch {
		case !ok:
			s.Missing++
		case rec.Outcome != OutcomeOK:
			s.Failed++
			pt = rec.Point
		default:
			pt = rec.Point
		}
		s.Points = append(s.Points, pt)
	}
	out := make([]*Series, len(order))
	for i, key := range order {
		out[i] = byKey[key]
	}
	return out, nil
}

// Summaries aggregates and summarizes every complete series (incomplete
// ones are skipped: their statistics would be meaningless).
func (c *Compiled) Summaries(recs map[string]Record) ([]expt.Summary, error) {
	series, err := c.Aggregate(recs)
	if err != nil {
		return nil, err
	}
	var sums []expt.Summary
	for _, s := range series {
		if s.Complete() {
			sums = append(sums, s.Summary())
		}
	}
	return sums, nil
}

// Remaining reports how many of the campaign's units have no record yet.
func (c *Compiled) Remaining(recs map[string]Record) int {
	n := 0
	for _, u := range c.Units {
		if _, ok := recs[u.ID]; !ok {
			n++
		}
	}
	return n
}

// Describe renders a one-line shape summary for logs.
func (c *Compiled) Describe() string {
	return fmt.Sprintf("%d units (%d problems × %d detectors × %d steps × %d models, stride %d)",
		len(c.Units), len(c.Manifest.Problems), len(c.Manifest.Detectors),
		len(c.Manifest.Steps), len(c.Manifest.Models), c.Manifest.Stride)
}
