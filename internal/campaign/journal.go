package campaign

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"sdcgmres/internal/expt"
	"sdcgmres/internal/frame"
)

// Outcome classifies a journaled unit.
const (
	// OutcomeOK: the experiment ran to completion (the solve may still have
	// hit its outer cap — see the point).
	OutcomeOK = "ok"
	// OutcomeTimedOut: the unit exceeded its wall-clock deadline and was
	// abandoned; the point records the outer cap, the campaign's loud
	// equivalent of "did not converge".
	OutcomeTimedOut = "timed-out"
	// OutcomeFailed: the experiment panicked or errored; the sandbox
	// absorbed it and the point records the outer cap.
	OutcomeFailed = "failed"
)

// Record is one journal line: a finished unit and its measured point.
// Records are append-only and keyed by the unit's content-derived ID, so a
// journal can be safely shared by successive runs — and even by different
// manifests whose cross products overlap.
type Record struct {
	ID        string          `json:"id"`
	Unit      Unit            `json:"unit"`
	Point     expt.SweepPoint `json:"point"`
	Outcome   string          `json:"outcome"`
	Err       string          `json:"err,omitempty"`
	ElapsedMS float64         `json:"elapsed_ms"`
}

// Journal is an append-only file of completed units: one CRC32C-framed JSON
// record per line (see internal/frame). Appends are serialized and written
// with a single write syscall per record, so a crash can damage at most the
// final line — which the loader detects by checksum and truncates.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
}

// OpenJournal opens (creating if needed) a journal for appending and
// returns the records it already holds. A damaged tail — a line truncated
// by a crash mid-append, or one whose checksum no longer verifies — is
// truncated away with no error, so the next append lands on a clean record
// boundary. Corruption anywhere else is reported, since it means the file
// is not our journal.
func OpenJournal(path string) (*Journal, map[string]Record, error) {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, nil, fmt.Errorf("campaign: journal dir: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("campaign: open journal: %w", err)
	}
	have, valid, err := loadRecords(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if size, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("campaign: seek journal: %w", err)
	} else if size > valid {
		// Drop the damaged tail so appends start on a record boundary.
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("campaign: truncate journal tail: %w", err)
		}
		if _, err := f.Seek(valid, io.SeekStart); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("campaign: seek journal: %w", err)
		}
	}
	return &Journal{f: f, path: path}, have, nil
}

// LoadJournal reads a journal's records without opening it for append.
func LoadJournal(path string) (map[string]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("campaign: open journal: %w", err)
	}
	defer f.Close()
	have, _, err := loadRecords(f)
	return have, err
}

// loadRecords parses the journal stream and returns its records plus the
// byte offset just past the last intact line — the truncation point for a
// damaged tail. Framed lines (the current format) verify their CRC32C;
// bare JSON lines (legacy journals) still parse. A bad line at the very
// end — torn write or checksum failure — is tolerated and excluded from
// valid; a bad line followed by more records is real corruption and errors.
func loadRecords(r io.Reader) (map[string]Record, int64, error) {
	have := make(map[string]Record)
	br := bufio.NewReaderSize(r, 1<<20)
	var offset, valid int64
	lineNo := 0
	var pendingErr error
	var pendingLine int
	for {
		line, err := br.ReadBytes('\n')
		if len(line) > 0 {
			lineNo++
			content := line
			terminated := err == nil
			if terminated {
				content = line[:len(line)-1]
			}
			offset += int64(len(line))
			switch {
			case len(bytes.TrimSpace(content)) == 0:
				// Blank padding between records: skip, but do not extend
				// valid — a blank tail is as truncatable as a torn one.
			case pendingErr != nil:
				// A bad line followed by more content is real corruption,
				// not a crash-damaged tail.
				return nil, 0, fmt.Errorf("campaign: journal line %d corrupt: %w", pendingLine, pendingErr)
			default:
				payload, _, ferr := frame.ParseLine(content)
				if ferr != nil {
					pendingErr, pendingLine = ferr, lineNo
					continue
				}
				var rec Record
				if uerr := json.Unmarshal(payload, &rec); uerr != nil {
					pendingErr, pendingLine = uerr, lineNo
					continue
				}
				if rec.ID == "" {
					pendingErr, pendingLine = fmt.Errorf("missing unit id"), lineNo
					continue
				}
				if !terminated {
					// The record parsed but its newline never landed: a
					// mid-write crash. Drop it — the unit reruns and
					// journals identically — rather than let the next
					// append glue onto an unterminated line.
					continue
				}
				have[rec.ID] = rec
				valid = offset
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, 0, fmt.Errorf("campaign: read journal: %w", err)
		}
	}
	return have, valid, nil
}

// Append journals one record. Safe for concurrent use by the worker pool.
func (j *Journal) Append(rec Record) error {
	raw, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("campaign: marshal record: %w", err)
	}
	line := frame.AppendLine(nil, raw)
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("campaign: append journal: %w", err)
	}
	return nil
}

// Sync flushes the journal to stable storage.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Sync()
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Close syncs and closes the journal.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.f.Sync(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}
