package campaign

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"

	"sdcgmres/internal/expt"
)

// Outcome classifies a journaled unit.
const (
	// OutcomeOK: the experiment ran to completion (the solve may still have
	// hit its outer cap — see the point).
	OutcomeOK = "ok"
	// OutcomeTimedOut: the unit exceeded its wall-clock deadline and was
	// abandoned; the point records the outer cap, the campaign's loud
	// equivalent of "did not converge".
	OutcomeTimedOut = "timed-out"
	// OutcomeFailed: the experiment panicked or errored; the sandbox
	// absorbed it and the point records the outer cap.
	OutcomeFailed = "failed"
)

// Record is one journal line: a finished unit and its measured point.
// Records are append-only and keyed by the unit's content-derived ID, so a
// journal can be safely shared by successive runs — and even by different
// manifests whose cross products overlap.
type Record struct {
	ID        string          `json:"id"`
	Unit      Unit            `json:"unit"`
	Point     expt.SweepPoint `json:"point"`
	Outcome   string          `json:"outcome"`
	Err       string          `json:"err,omitempty"`
	ElapsedMS float64         `json:"elapsed_ms"`
}

// Journal is an append-only JSONL file of completed units. Appends are
// serialized and written with a single write syscall per record, so a crash
// can corrupt at most the final line — which the loader tolerates.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
}

// OpenJournal opens (creating if needed) a journal for appending and
// returns the records it already holds. A truncated final line — the
// footprint of a crash mid-append — is dropped with no error; corruption
// anywhere else is reported, since it means the file is not our journal.
func OpenJournal(path string) (*Journal, map[string]Record, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("campaign: open journal: %w", err)
	}
	have, err := loadRecords(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("campaign: seek journal: %w", err)
	}
	return &Journal{f: f, path: path}, have, nil
}

// LoadJournal reads a journal's records without opening it for append.
func LoadJournal(path string) (map[string]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("campaign: open journal: %w", err)
	}
	defer f.Close()
	return loadRecords(f)
}

// loadRecords parses the journal stream, tolerating a truncated last line.
func loadRecords(r io.Reader) (map[string]Record, error) {
	have := make(map[string]Record)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	var pendingErr error
	var pendingLine int
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if pendingErr != nil {
			// A bad line followed by more content is real corruption, not a
			// crash-truncated tail.
			return nil, fmt.Errorf("campaign: journal line %d corrupt: %w", pendingLine, pendingErr)
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			pendingErr, pendingLine = err, lineNo
			continue
		}
		if rec.ID == "" {
			pendingErr, pendingLine = fmt.Errorf("missing unit id"), lineNo
			continue
		}
		have[rec.ID] = rec
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("campaign: read journal: %w", err)
	}
	return have, nil
}

// Append journals one record. Safe for concurrent use by the worker pool.
func (j *Journal) Append(rec Record) error {
	raw, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("campaign: marshal record: %w", err)
	}
	raw = append(raw, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(raw); err != nil {
		return fmt.Errorf("campaign: append journal: %w", err)
	}
	return nil
}

// Sync flushes the journal to stable storage.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Sync()
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Close syncs and closes the journal.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.f.Sync(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}
