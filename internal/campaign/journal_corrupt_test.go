package campaign

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"sdcgmres/internal/expt"
)

// writeTestJournal appends n framed records and returns the file contents.
func writeTestJournal(t *testing.T, path string, n int) []byte {
	t.Helper()
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		rec := Record{
			ID:      string(rune('a'+i)) + "aaa",
			Unit:    Unit{ID: string(rune('a'+i)) + "aaa", Site: i + 1},
			Point:   expt.SweepPoint{AggregateInner: i + 1, OuterIters: 5 + i, Converged: true},
			Outcome: OutcomeOK,
		}
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestJournalCorruptTailTruncated injects a bit flip into the final record
// — not a short write, a full-length line whose bytes rotted — and requires
// the loader to detect it by checksum, drop exactly that record, and
// truncate the file so subsequent appends land on a clean boundary.
func TestJournalCorruptTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	raw := writeTestJournal(t, path, 3)

	// Flip one payload bit inside the last line.
	lastLine := bytes.LastIndexByte(raw[:len(raw)-1], '\n') + 1
	mutated := append([]byte(nil), raw...)
	mutated[lastLine+20] ^= 0x08
	if err := os.WriteFile(path, mutated, 0o644); err != nil {
		t.Fatal(err)
	}

	j, have, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("corrupt tail must be tolerated: %v", err)
	}
	if len(have) != 2 {
		t.Fatalf("got %d records, want 2 (corrupt tail dropped)", len(have))
	}
	if _, ok := have["caaa"]; ok {
		t.Fatal("the corrupted record must not survive")
	}

	// The tail was truncated, so a fresh append must produce a journal that
	// reloads cleanly with the replacement record.
	rec := Record{ID: "caaa", Unit: Unit{ID: "caaa", Site: 3},
		Point: expt.SweepPoint{AggregateInner: 3, OuterIters: 7, Converged: true}, Outcome: OutcomeOK}
	if err := j.Append(rec); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	reloaded, err := LoadJournal(path)
	if err != nil {
		t.Fatalf("journal after corrupt-tail truncation + append must load: %v", err)
	}
	if len(reloaded) != 3 || reloaded["caaa"].Point.OuterIters != 7 {
		t.Fatalf("reloaded: %+v", reloaded)
	}
}

// TestJournalCorruptMiddleRejected: the same bit flip anywhere but the tail
// is real corruption — records follow it, so this is not a crash footprint —
// and must fail the load loudly.
func TestJournalCorruptMiddleRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	raw := writeTestJournal(t, path, 3)

	firstLineEnd := bytes.IndexByte(raw, '\n')
	mutated := append([]byte(nil), raw...)
	mutated[firstLineEnd-4] ^= 0x08
	if err := os.WriteFile(path, mutated, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadJournal(path); err == nil {
		t.Fatal("mid-file bit rot must be reported, not silently dropped")
	}
	if _, _, err := OpenJournal(path); err == nil {
		t.Fatal("OpenJournal must also reject mid-file bit rot")
	}
}

// TestJournalShortTailStillTolerated: the pre-CRC behaviour — a line cut
// short by a crash — keeps working under framing.
func TestJournalShortTailStillTolerated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	raw := writeTestJournal(t, path, 2)

	// Cut the final line in half (newline gone: a torn single-write append).
	lastLine := bytes.LastIndexByte(raw[:len(raw)-1], '\n') + 1
	cut := lastLine + (len(raw)-lastLine)/2
	if err := os.WriteFile(path, raw[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	j, have, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("short tail must be tolerated: %v", err)
	}
	defer j.Close()
	if len(have) != 1 {
		t.Fatalf("got %d records, want 1", len(have))
	}
	// OpenJournal truncated to the last intact record boundary.
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != int64(lastLine) {
		t.Fatalf("file size %d after open, want truncation to %d", fi.Size(), lastLine)
	}
}
