// Package campaign implements durable, resumable fault-injection sweeps:
// the batch layer that turns the paper's one-shot experimental campaign
// (Section VII — one injected SDC at every inner-iteration position × fault
// magnitudes × MGS steps × problems) into a long-running, interruptible,
// observable job.
//
// A declarative Manifest (problems × fault models × MGS steps × detector
// policies) compiles into a deterministic list of work units with stable
// content-derived IDs. An engine executes the units on a worker pool, each
// under the sandbox reliability model with a per-unit deadline, and appends
// every completed unit to an append-only JSONL journal. A restarted
// campaign reloads the journal and skips finished units, so a crash or
// SIGINT loses at most the in-flight experiments. An aggregator folds the
// journal back into the exact artifacts the in-memory expt path produces —
// byte-identical CSVs and summary tables — because both paths run
// expt.RunPoint on the same sites and render through the same writers.
package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"sdcgmres/internal/core"
	"sdcgmres/internal/detect"
	"sdcgmres/internal/fault"
)

// Resource ceilings for untrusted manifests, mirroring the service caps.
const (
	// MaxGridN caps the Poisson grid side (n² rows).
	MaxGridN = 512
	// MaxCircuitN caps the circuit surrogate dimension.
	MaxCircuitN = 60000
	// MaxInnerIters caps inner iterations per outer iteration.
	MaxInnerIters = 500
	// MaxTargetOuter caps the calibrated failure-free outer count.
	MaxTargetOuter = 500
	// MaxUnits caps the compiled unit count of one campaign.
	MaxUnits = 1_000_000
)

// ProblemSpec names one calibrated experiment problem. Calibration (finding
// the outer tolerance that pins the failure-free outer count, exactly as
// expt.Calibrate does) happens at compile time, so the spec is pure data.
type ProblemSpec struct {
	// Kind is the generator: "poisson" or "circuit".
	Kind string `json:"kind"`
	// N is the generator size (grid side for poisson, dimension for
	// circuit).
	N int `json:"n"`
	// InnerIters is the inner iteration count per outer iteration.
	InnerIters int `json:"inner_iters"`
	// TargetOuter is the failure-free outer count to calibrate to.
	TargetOuter int `json:"target_outer"`
}

// Key is the problem's canonical identity inside unit IDs and journals.
func (p ProblemSpec) Key() string {
	return fmt.Sprintf("%s/%d/%d/%d", p.Kind, p.N, p.InnerIters, p.TargetOuter)
}

// DisplayName is the calibrated problem's report name for this spec —
// exactly what Compile's calibration produces (expt.Problem.Name) — so
// consumers holding only a problem key (the results store) can render the
// same labels the engine aggregator does.
func (p ProblemSpec) DisplayName() string {
	if p.Kind == "circuit" {
		return fmt.Sprintf("circuit-dcop-%d", p.N)
	}
	return fmt.Sprintf("%s-%dx%d", p.Kind, p.N, p.N)
}

// ParseProblemKey inverts ProblemSpec.Key: "poisson/64/25/9" back to the
// spec. Journaled units carry only the key, so store-side analysis parses
// it to recover the failure-free outer count (the overhead baseline) and
// the inner iteration count (the heatmap geometry) without recalibrating.
func ParseProblemKey(key string) (ProblemSpec, error) {
	var p ProblemSpec
	parts := strings.Split(key, "/")
	if len(parts) != 4 {
		return p, fmt.Errorf("campaign: problem key %q: want kind/n/inner/target", key)
	}
	p.Kind = parts[0]
	if _, err := fmt.Sscanf(parts[1]+" "+parts[2]+" "+parts[3], "%d %d %d",
		&p.N, &p.InnerIters, &p.TargetOuter); err != nil {
		return p, fmt.Errorf("campaign: problem key %q: %w", key, err)
	}
	if err := p.Validate(); err != nil {
		return p, err
	}
	return p, nil
}

// Validate rejects malformed or resource-abusive problem specs.
func (p ProblemSpec) Validate() error {
	switch p.Kind {
	case "poisson":
		if p.N < 2 || p.N > MaxGridN {
			return fmt.Errorf("campaign: poisson n = %d out of range [2, %d]", p.N, MaxGridN)
		}
	case "circuit":
		if p.N < 3 || p.N > MaxCircuitN {
			return fmt.Errorf("campaign: circuit n = %d out of range [3, %d]", p.N, MaxCircuitN)
		}
	default:
		return fmt.Errorf("campaign: unknown problem kind %q (want poisson | circuit)", p.Kind)
	}
	if p.InnerIters < 1 || p.InnerIters > MaxInnerIters {
		return fmt.Errorf("campaign: inner_iters = %d out of range [1, %d]", p.InnerIters, MaxInnerIters)
	}
	if p.TargetOuter < 2 || p.TargetOuter > MaxTargetOuter {
		return fmt.Errorf("campaign: target_outer = %d out of range [2, %d]", p.TargetOuter, MaxTargetOuter)
	}
	return nil
}

// DetectorSpec selects a detector policy for a slice of the campaign.
type DetectorSpec struct {
	// Enabled arms the Hessenberg-bound detector.
	Enabled bool `json:"enabled"`
	// Bound is "frobenius" (default) or "spectral".
	Bound string `json:"bound,omitempty"`
	// Response is "warn" (default), "halt", or "restart".
	Response string `json:"response,omitempty"`
}

// Key is the policy's canonical identity inside unit IDs.
func (d DetectorSpec) Key() string {
	if !d.Enabled {
		return "off"
	}
	bound := d.Bound
	if bound == "" {
		bound = "frobenius"
	}
	resp := d.Response
	if resp == "" {
		resp = "warn"
	}
	return "on/" + bound + "/" + resp
}

// ParseDetectorKey inverts DetectorSpec.Key: "off" or "on/<bound>/<resp>"
// back to a spec. Like ParseProblemKey, this lets a consumer holding only
// journaled unit fields rebuild the exact expt.SweepConfig the engine used.
func ParseDetectorKey(key string) (DetectorSpec, error) {
	if key == "off" {
		return DetectorSpec{}, nil
	}
	parts := strings.Split(key, "/")
	if len(parts) != 3 || parts[0] != "on" {
		return DetectorSpec{}, fmt.Errorf("campaign: detector key %q: want off | on/<bound>/<response>", key)
	}
	d := DetectorSpec{Enabled: true, Bound: parts[1], Response: parts[2]}
	if _, err := d.Config(); err != nil {
		return DetectorSpec{}, err
	}
	return d, nil
}

// Config translates the spec into the solver's detector configuration.
func (d DetectorSpec) Config() (core.DetectorConfig, error) {
	if !d.Enabled {
		return core.DetectorConfig{}, nil
	}
	var kind detect.BoundKind
	switch d.Bound {
	case "", "frobenius":
		kind = detect.FrobeniusBound
	case "spectral":
		kind = detect.SpectralBound
	default:
		return core.DetectorConfig{}, fmt.Errorf("campaign: unknown detector bound %q", d.Bound)
	}
	var resp core.Response
	switch d.Response {
	case "", "warn":
		resp = core.ResponseWarn
	case "halt":
		resp = core.ResponseHaltInner
	case "restart":
		resp = core.ResponseRestartInner
	default:
		return core.DetectorConfig{}, fmt.Errorf("campaign: unknown detector response %q", d.Response)
	}
	return core.DetectorConfig{Enabled: true, Kind: kind, Response: resp}, nil
}

// Manifest declares a campaign: the full cross product of problems × fault
// models × MGS steps × detector policies, swept over every (strided)
// aggregate inner iteration of each problem's failure-free schedule. The
// manifest is pure data — JSON in, deterministic unit list out — so the
// same manifest always compiles to the same units with the same IDs,
// which is what makes journals resumable across processes.
type Manifest struct {
	// Name labels the campaign in journals, logs and the service API.
	Name string `json:"name"`
	// Problems are the calibrated experiment instances to sweep.
	Problems []ProblemSpec `json:"problems"`
	// Models are fault class specs ("large", "slight", "tiny",
	// "bitflip:<bit>", "set:<value>", "scale:<factor>").
	Models []string `json:"models"`
	// Steps are MGS step selectors ("first", "last", "norm").
	Steps []string `json:"steps"`
	// Detectors are the detector policies to cross with; empty means one
	// disabled-detector policy (the paper's Figures 3–4 configuration).
	Detectors []DetectorSpec `json:"detectors,omitempty"`
	// Stride samples every Stride-th aggregate inner iteration (default 1,
	// the paper's full sweep).
	Stride int `json:"stride,omitempty"`
	// UnitBudgetMS caps each unit's wall clock in milliseconds (default
	// 2 minutes).
	UnitBudgetMS int64 `json:"unit_budget_ms,omitempty"`
}

// withDefaults fills the manifest's optional fields.
func (m Manifest) withDefaults() Manifest {
	if len(m.Detectors) == 0 {
		m.Detectors = []DetectorSpec{{}}
	}
	if m.Stride <= 0 {
		m.Stride = 1
	}
	return m
}

// Validate rejects malformed manifests before the (possibly expensive)
// compile step.
func (m *Manifest) Validate() error {
	if strings.TrimSpace(m.Name) == "" {
		return fmt.Errorf("campaign: manifest needs a name")
	}
	if len(m.Problems) == 0 {
		return fmt.Errorf("campaign: manifest needs at least one problem")
	}
	if len(m.Models) == 0 {
		return fmt.Errorf("campaign: manifest needs at least one fault model")
	}
	if len(m.Steps) == 0 {
		return fmt.Errorf("campaign: manifest needs at least one MGS step")
	}
	if m.Stride < 0 {
		return fmt.Errorf("campaign: stride must be >= 0")
	}
	if m.UnitBudgetMS < 0 {
		return fmt.Errorf("campaign: unit_budget_ms must be >= 0")
	}
	seenP := map[string]bool{}
	for _, p := range m.Problems {
		if err := p.Validate(); err != nil {
			return err
		}
		if seenP[p.Key()] {
			return fmt.Errorf("campaign: duplicate problem %s", p.Key())
		}
		seenP[p.Key()] = true
	}
	seenM := map[string]bool{}
	for _, spec := range m.Models {
		if _, err := fault.ParseModel(spec); err != nil {
			return fmt.Errorf("campaign: %w", err)
		}
		if seenM[spec] {
			return fmt.Errorf("campaign: duplicate fault model %q", spec)
		}
		seenM[spec] = true
	}
	seenS := map[string]bool{}
	for _, s := range m.Steps {
		if _, err := fault.ParseStepSelector(s); err != nil {
			return fmt.Errorf("campaign: %w", err)
		}
		if seenS[s] {
			return fmt.Errorf("campaign: duplicate step %q", s)
		}
		seenS[s] = true
	}
	seenD := map[string]bool{}
	for _, d := range m.Detectors {
		if _, err := d.Config(); err != nil {
			return err
		}
		if seenD[d.Key()] {
			return fmt.Errorf("campaign: duplicate detector policy %s", d.Key())
		}
		seenD[d.Key()] = true
	}
	return nil
}

// Hash is a stable content hash of the manifest (after defaulting), used to
// key journal files so that resubmitting the same manifest resumes the same
// journal.
func (m Manifest) Hash() string {
	canon := m.withDefaults()
	// Canonical form: field order is fixed by the struct, slices keep
	// manifest order (order is part of identity: it fixes unit order).
	raw, err := json.Marshal(canon)
	if err != nil {
		// Manifest is plain data; Marshal cannot fail on it.
		panic(fmt.Sprintf("campaign: manifest hash: %v", err))
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:8])
}

// Slug renders the campaign name as a filesystem-safe token.
func (m Manifest) Slug() string {
	var b strings.Builder
	for _, r := range strings.ToLower(m.Name) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '-' || r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "campaign"
	}
	return b.String()
}

// SeriesKey identifies one sweep series (one curve of one figure): a
// problem, fault model, MGS step and detector policy. Units of a series
// differ only in their fault site.
type SeriesKey struct {
	Problem  string `json:"problem"`
	Model    string `json:"model"`
	Step     string `json:"step"`
	Detector string `json:"detector"`
}

// String renders the key for logs.
func (k SeriesKey) String() string {
	return fmt.Sprintf("%s × %s × %s × det=%s", k.Problem, k.Model, k.Step, k.Detector)
}
