package campaign

import (
	"bytes"
	"context"
	"math/rand"
	"path/filepath"
	"testing"
)

// TestAggregateOrderIndependent pins the property distributed execution
// leans on: records arriving (and being journaled) in any order aggregate
// to byte-identical CSVs, because Aggregate orders by the unit grid, not by
// arrival. A fleet of workers completes units in a nondeterministic
// interleaving, so without this property distributed CSVs could never match
// the single-process ones.
func TestAggregateOrderIndependent(t *testing.T) {
	c := compileTest(t)
	j, have, err := OpenJournal(filepath.Join(t.TempDir(), "ordered.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	r := NewRunner(c, j, have, Options{Workers: 2})
	if err := r.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	recs := r.Records()
	want := runToCSV(t, c, recs)

	ordered := make([]Record, 0, len(c.Units))
	for _, u := range c.Units {
		ordered = append(ordered, recs[u.ID])
	}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 5; trial++ {
		shuffled := append([]Record(nil), ordered...)
		rng.Shuffle(len(shuffled), func(i, k int) { shuffled[i], shuffled[k] = shuffled[k], shuffled[i] })

		// Journal the shuffled arrival order, reload, and aggregate — the
		// full durability round-trip a coordinator performs.
		path := filepath.Join(t.TempDir(), "shuffled.jsonl")
		sj, _, err := OpenJournal(path)
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range shuffled {
			if err := sj.Append(rec); err != nil {
				t.Fatal(err)
			}
		}
		if err := sj.Close(); err != nil {
			t.Fatal(err)
		}
		_, reloaded, err := OpenJournal(path)
		if err != nil {
			t.Fatal(err)
		}
		if got := runToCSV(t, c, reloaded); !bytes.Equal(want, got) {
			t.Fatalf("trial %d: shuffled-arrival CSV differs:\n-- want --\n%s\n-- got --\n%s", trial, want, got)
		}
	}
}
