package campaign

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sdcgmres/internal/expt"
)

// testManifest is a minute-scale campaign over the package's calibration
// fixture: Poisson 8×8, 6 inner iterations, 5 failure-free outers → 30
// sites, strided to 10 units per series.
func testManifest() Manifest {
	return Manifest{
		Name:     "test-sweep",
		Problems: []ProblemSpec{{Kind: "poisson", N: 8, InnerIters: 6, TargetOuter: 5}},
		Models:   []string{"slight"},
		Steps:    []string{"first"},
		Stride:   3,
	}
}

// compileTest caches the calibrated compile across tests in this package.
var compiledCache *Compiled

func compileTest(t *testing.T) *Compiled {
	t.Helper()
	if compiledCache != nil {
		return compiledCache
	}
	c, err := Compile(testManifest())
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	compiledCache = c
	return c
}

func TestManifestValidate(t *testing.T) {
	good := testManifest()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid manifest rejected: %v", err)
	}
	bad := []Manifest{
		{},
		{Name: "x"},
		{Name: "x", Problems: []ProblemSpec{{Kind: "poisson", N: 8, InnerIters: 6, TargetOuter: 5}}},
		{Name: "x", Problems: []ProblemSpec{{Kind: "nope", N: 8, InnerIters: 6, TargetOuter: 5}},
			Models: []string{"large"}, Steps: []string{"first"}},
		{Name: "x", Problems: []ProblemSpec{{Kind: "poisson", N: 8, InnerIters: 6, TargetOuter: 5}},
			Models: []string{"huge"}, Steps: []string{"first"}},
		{Name: "x", Problems: []ProblemSpec{{Kind: "poisson", N: 8, InnerIters: 6, TargetOuter: 5}},
			Models: []string{"large"}, Steps: []string{"middle"}},
		{Name: "x", Problems: []ProblemSpec{{Kind: "poisson", N: 8, InnerIters: 6, TargetOuter: 5}},
			Models: []string{"large", "large"}, Steps: []string{"first"}},
		{Name: "x", Problems: []ProblemSpec{{Kind: "poisson", N: 8, InnerIters: 6, TargetOuter: 5}},
			Models: []string{"large"}, Steps: []string{"first"},
			Detectors: []DetectorSpec{{Enabled: true, Bound: "nope"}}},
		{Name: "x", Problems: []ProblemSpec{{Kind: "poisson", N: 8, InnerIters: 6, TargetOuter: 5}},
			Models: []string{"large"}, Steps: []string{"first"},
			Detectors: []DetectorSpec{{Enabled: true, Response: "nope"}}},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Fatalf("bad manifest %d accepted: %+v", i, m)
		}
	}
}

func TestManifestHashStable(t *testing.T) {
	a, b := testManifest(), testManifest()
	if a.Hash() != b.Hash() {
		t.Fatal("identical manifests must hash identically")
	}
	b.Stride = 5
	if a.Hash() == b.Hash() {
		t.Fatal("different manifests must hash differently")
	}
	// Defaulting is part of the hash: an explicit disabled detector equals
	// the implicit one.
	c := testManifest()
	c.Detectors = []DetectorSpec{{}}
	d := testManifest()
	d.Stride = 3 // unchanged; Detectors empty → defaulted
	if c.Hash() != d.Hash() {
		t.Fatal("defaulted manifests must hash like their explicit forms")
	}
}

func TestCompileDeterministicIDs(t *testing.T) {
	c := compileTest(t)
	// 30 sites, stride 3 → sites 1,4,...,28 → 10 units.
	if len(c.Units) != 10 {
		t.Fatalf("units = %d, want 10", len(c.Units))
	}
	c2, err := CompileWith(c.Manifest, c.Problems)
	if err != nil {
		t.Fatal(err)
	}
	for i := range c.Units {
		if c.Units[i] != c2.Units[i] {
			t.Fatalf("unit %d differs across compiles: %+v vs %+v", i, c.Units[i], c2.Units[i])
		}
		if len(c.Units[i].ID) != 16 {
			t.Fatalf("unit ID %q not 16 hex chars", c.Units[i].ID)
		}
	}
	// Content identity: a different site or model must change the ID.
	if unitID("p", "large", "first", "off", 1) == unitID("p", "large", "first", "off", 2) {
		t.Fatal("site must be part of the unit ID")
	}
	if unitID("p", "large", "first", "off", 1) == unitID("p", "slight", "first", "off", 1) {
		t.Fatal("model must be part of the unit ID")
	}
	ids := map[string]bool{}
	for _, u := range c.Units {
		if ids[u.ID] {
			t.Fatalf("duplicate unit ID %s", u.ID)
		}
		ids[u.ID] = true
	}
}

func TestCompileWithRejectsMismatchedCalibration(t *testing.T) {
	c := compileTest(t)
	m := testManifest()
	m.Problems[0].TargetOuter = 4 // calibrated fixture has 5
	if _, err := CompileWith(m, c.Problems); err == nil {
		t.Fatal("mismatched calibration must be rejected")
	}
	if _, err := CompileWith(testManifest(), nil); err == nil {
		t.Fatal("missing calibrated problem must be rejected")
	}
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, have, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(have) != 0 {
		t.Fatalf("fresh journal has %d records", len(have))
	}
	recs := []Record{
		{ID: "aaaa", Unit: Unit{ID: "aaaa", Site: 1}, Point: expt.SweepPoint{AggregateInner: 1, OuterIters: 5, Converged: true}, Outcome: OutcomeOK},
		{ID: "bbbb", Unit: Unit{ID: "bbbb", Site: 4}, Outcome: OutcomeFailed, Err: "boom"},
	}
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 2 || loaded["aaaa"].Point.OuterIters != 5 || loaded["bbbb"].Err != "boom" {
		t.Fatalf("round trip: %+v", loaded)
	}
	// Reopening for append preserves the records.
	j2, have2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(have2) != 2 {
		t.Fatalf("reopen: %d records, want 2", len(have2))
	}
}

func TestJournalToleratesTruncatedTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	full := `{"id":"aaaa","unit":{"id":"aaaa","problem":"p","model":"large","step":"first","detector":"off","site":1},"point":{"aggregate_inner":1,"outer_iters":5,"converged":true,"fault_fired":true},"outcome":"ok","elapsed_ms":1}` + "\n"
	trunc := `{"id":"bbbb","unit":{"id":"bb` // crash mid-append
	if err := os.WriteFile(path, []byte(full+trunc), 0o644); err != nil {
		t.Fatal(err)
	}
	have, err := LoadJournal(path)
	if err != nil {
		t.Fatalf("truncated tail must be tolerated: %v", err)
	}
	if len(have) != 1 || have["aaaa"].Point.OuterIters != 5 {
		t.Fatalf("records: %+v", have)
	}
}

func TestJournalRejectsMidFileCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	good := `{"id":"aaaa","unit":{"id":"aaaa"},"point":{},"outcome":"ok"}` + "\n"
	bad := "not json at all\n"
	if err := os.WriteFile(path, []byte(bad+good), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadJournal(path); err == nil {
		t.Fatal("mid-file corruption must be reported")
	} else if !strings.Contains(err.Error(), "line 1") {
		t.Fatalf("error should name the line: %v", err)
	}
}
