package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"sdcgmres/internal/expt"
	"sdcgmres/internal/fault"
	"sdcgmres/internal/gallery"
)

// Unit is one experiment of a campaign: a single SDC at one site of one
// sweep series. Its ID is derived from the unit's content, never from
// execution order, so the same manifest compiles to the same IDs in every
// process — the property the journal's skip-on-resume logic rests on.
type Unit struct {
	// ID is the stable content-derived identifier (16 hex chars).
	ID string `json:"id"`
	// Problem is the ProblemSpec key ("poisson/64/25/9").
	Problem string `json:"problem"`
	// Model is the fault class spec as written in the manifest.
	Model string `json:"model"`
	// Step is the MGS step selector name.
	Step string `json:"step"`
	// Detector is the DetectorSpec key ("off", "on/frobenius/restart").
	Detector string `json:"detector"`
	// Site is the aggregate inner iteration the SDC strikes.
	Site int `json:"site"`
}

// unitIDVersion guards the ID scheme: bump it if the identity fields ever
// change meaning, so stale journals cannot silently satisfy new campaigns.
const unitIDVersion = "v1"

// unitID derives the content hash identifying one unit.
func unitID(problem, model, step, detector string, site int) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s|%s|%s|%s|%s|site=%d", unitIDVersion, problem, model, step, detector, site)
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// SeriesKey returns the sweep series this unit belongs to.
func (u Unit) SeriesKey() SeriesKey {
	return SeriesKey{Problem: u.Problem, Model: u.Model, Step: u.Step, Detector: u.Detector}
}

// VerifyID recomputes the unit's content hash and reports whether it
// matches u.ID. This is the trust-boundary check a coordinator applies to
// records arriving from remote workers: a record whose unit fields do not
// hash to its claimed ID is corrupt (or fabricated) and must not enter the
// journal.
func (u Unit) VerifyID() bool {
	return unitID(u.Problem, u.Model, u.Step, u.Detector, u.Site) == u.ID
}

// Compiled is a manifest turned executable: calibrated problems plus the
// deterministic unit list. Units are ordered problems × detectors × steps ×
// models × sites, following manifest order, so unit N of a campaign is the
// same experiment in every process.
type Compiled struct {
	Manifest Manifest
	// Problems maps ProblemSpec keys to calibrated instances.
	Problems map[string]*expt.Problem
	// Units is the full work list in deterministic order.
	Units []Unit
	// detectors maps DetectorSpec keys back to specs (for SweepConfig).
	detectors map[string]DetectorSpec
}

// Compile validates the manifest, calibrates every problem (the expensive
// step: one failure-free probe solve per problem, exactly as the one-shot
// expt path does) and expands the cross product into units.
func Compile(m Manifest) (*Compiled, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	m = m.withDefaults()
	problems := make(map[string]*expt.Problem, len(m.Problems))
	for _, ps := range m.Problems {
		p, err := calibrate(ps)
		if err != nil {
			return nil, err
		}
		problems[ps.Key()] = p
	}
	return CompileWith(m, problems)
}

// CompileWith expands a validated manifest against already calibrated
// problems (keyed by ProblemSpec.Key). Callers that calibrate once and run
// several manifests over the same problems — cmd/paperfigs does — use this
// to avoid repeating the probe solves.
func CompileWith(m Manifest, problems map[string]*expt.Problem) (*Compiled, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	m = m.withDefaults()
	c := &Compiled{
		Manifest:  m,
		Problems:  make(map[string]*expt.Problem, len(m.Problems)),
		detectors: make(map[string]DetectorSpec, len(m.Detectors)),
	}
	for _, d := range m.Detectors {
		c.detectors[d.Key()] = d
	}
	for _, ps := range m.Problems {
		p, ok := problems[ps.Key()]
		if !ok || p == nil {
			return nil, fmt.Errorf("campaign: no calibrated problem for %s", ps.Key())
		}
		if p.FailureFreeOuter != ps.TargetOuter || p.InnerIters != ps.InnerIters {
			return nil, fmt.Errorf("campaign: calibrated problem %s does not match spec %s (ff=%d inner=%d)",
				p.Name, ps.Key(), p.FailureFreeOuter, p.InnerIters)
		}
		c.Problems[ps.Key()] = p
		total := p.FailureFreeOuter * p.InnerIters
		for _, d := range m.Detectors {
			for _, step := range m.Steps {
				for _, model := range m.Models {
					for t := 1; t <= total; t += m.Stride {
						c.Units = append(c.Units, Unit{
							ID:       unitID(ps.Key(), model, step, d.Key(), t),
							Problem:  ps.Key(),
							Model:    model,
							Step:     step,
							Detector: d.Key(),
							Site:     t,
						})
						if len(c.Units) > MaxUnits {
							return nil, fmt.Errorf("campaign: unit count exceeds cap %d", MaxUnits)
						}
					}
				}
			}
		}
	}
	return c, nil
}

// CalibrateProblem builds and calibrates one problem spec: the expensive
// compile step (one failure-free probe solve), exposed so distributed
// workers can calibrate manifests fetched from a coordinator and cache the
// results across campaigns.
func CalibrateProblem(ps ProblemSpec) (*expt.Problem, error) {
	return calibrate(ps)
}

// calibrate builds and calibrates one problem spec.
func calibrate(ps ProblemSpec) (*expt.Problem, error) {
	switch ps.Kind {
	case "poisson":
		return expt.Calibrate(fmt.Sprintf("poisson-%dx%d", ps.N, ps.N), gallery.Poisson2D(ps.N), ps.InnerIters, ps.TargetOuter)
	case "circuit":
		return expt.Calibrate(fmt.Sprintf("circuit-dcop-%d", ps.N),
			gallery.CircuitDCOP(gallery.DefaultCircuitDCOPConfig(ps.N)), ps.InnerIters, ps.TargetOuter)
	}
	return nil, fmt.Errorf("campaign: unknown problem kind %q", ps.Kind)
}

// SweepConfig reconstructs the expt configuration for one unit, so the
// engine and the aggregator hand the exact same inputs to expt.RunPoint and
// expt.WriteSweepCSV as the one-shot path does.
func (c *Compiled) SweepConfig(u Unit) (expt.SweepConfig, error) {
	model, err := fault.ParseModel(u.Model)
	if err != nil {
		return expt.SweepConfig{}, fmt.Errorf("campaign: unit %s: %w", u.ID, err)
	}
	step, err := fault.ParseStepSelector(u.Step)
	if err != nil {
		return expt.SweepConfig{}, fmt.Errorf("campaign: unit %s: %w", u.ID, err)
	}
	dspec, ok := c.detectors[u.Detector]
	if !ok {
		return expt.SweepConfig{}, fmt.Errorf("campaign: unit %s: unknown detector policy %q", u.ID, u.Detector)
	}
	det, err := dspec.Config()
	if err != nil {
		return expt.SweepConfig{}, err
	}
	return expt.SweepConfig{
		Model:    model,
		Step:     step,
		Detector: det,
		Stride:   c.Manifest.Stride,
	}, nil
}
