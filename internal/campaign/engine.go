package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sdcgmres/internal/expt"
	"sdcgmres/internal/kernel"
	"sdcgmres/internal/memo"
	"sdcgmres/internal/sandbox"
	"sdcgmres/internal/trace"
)

// Options parameterizes a campaign run.
type Options struct {
	// Workers bounds concurrent units (default GOMAXPROCS).
	Workers int
	// UnitBudget is the per-unit wall-clock deadline (default 2 minutes,
	// overridden by the manifest's unit_budget_ms when set).
	UnitBudget time.Duration
	// OnRecord, when non-nil, observes every record as it is journaled
	// (metrics, progress logging). Called from worker goroutines.
	OnRecord func(Record)
	// OnSkip, when non-nil, observes every unit skipped because the journal
	// already holds it.
	OnSkip func(Unit)
	// Recorder, when non-nil, receives unit-lifecycle trace events
	// (UnitStart/UnitEnd and each unit's sandbox outcome). Tracing is
	// observation only: the records a campaign journals — and therefore
	// its aggregate CSVs — are byte-identical with or without it.
	Recorder *trace.Recorder
	// KernelWorkers is the total shared-memory kernel budget for the run
	// (0 = kernels run sequentially). Each campaign worker gets a
	// persistent pool of max(1, KernelWorkers/Workers) kernel workers, so
	// unit concurrency times pool width never oversubscribes the budget.
	// Kernels are bitwise deterministic: records and aggregate CSVs are
	// identical for every KernelWorkers value.
	KernelWorkers int
	// Memo, when non-nil, is the cross-campaign solve cache: units whose
	// content-derived ID is cached are journaled from the cache instead
	// of executing — the skip works across campaigns and journals, where
	// the have map only covers same-journal resume. Fresh OK records are
	// published back. Cached records are byte-identical to fresh ones
	// (bit-deterministic kernels), so journals and aggregate CSVs do not
	// change; nil costs one pointer check per unit.
	Memo *memo.Cache
	// OnMemo, when non-nil, observes every unit satisfied from the memo
	// cache (these records are journaled but fire neither OnRecord nor
	// OnSkip). Called from worker goroutines.
	OnMemo func(Record)
}

// Progress is a point-in-time snapshot of a run.
type Progress struct {
	// Total is the campaign's unit count.
	Total int `json:"total"`
	// Done counts units with a journal record (skipped + executed).
	Done int `json:"done"`
	// Skipped counts units satisfied by the journal at startup — the
	// resume path's savings.
	Skipped int `json:"skipped"`
	// Memoized counts units satisfied by the cross-campaign solve cache
	// (journaled without executing). Omitted when zero, so runs without
	// a cache serialize exactly as before.
	Memoized int `json:"memoized,omitempty"`
	// Executed counts units this run actually ran.
	Executed int `json:"executed"`
	// Failed counts executed units whose experiment errored or panicked.
	Failed int `json:"failed"`
	// TimedOut counts executed units killed by the per-unit deadline.
	TimedOut int `json:"timed_out"`
	// ElapsedMS is wall-clock time since Run started.
	ElapsedMS float64 `json:"elapsed_ms"`
	// ETAMS estimates the remaining wall clock from the executed-unit rate
	// (0 until at least one unit finished, or when nothing remains).
	ETAMS float64 `json:"eta_ms,omitempty"`
	// FailuresByProblem breaks failures down per problem shard.
	FailuresByProblem map[string]int `json:"failures_by_problem,omitempty"`
}

// Runner executes a compiled campaign against a journal: journaled units
// are skipped, the rest run on a worker pool, each inside the sandbox with
// a per-unit deadline, and every completed unit is journaled before it
// counts as done. Cancelling the context stops the run between units;
// in-flight experiments finish (or hit their deadline) and nothing already
// journaled is lost.
type Runner struct {
	compiled *Compiled
	journal  *Journal
	have     map[string]Record
	opts     Options

	started  atomic.Int64 // unix nanos; 0 until Run begins
	done     atomic.Int64
	skipped  atomic.Int64
	memoized atomic.Int64
	executed atomic.Int64
	failed   atomic.Int64
	timedOut atomic.Int64

	mu         sync.Mutex
	byProblem  map[string]int
	newRecords map[string]Record
}

// NewRunner builds a runner. have is the journal's record set at open time
// (from OpenJournal); records for unknown unit IDs are ignored, so journals
// may be shared across manifests.
func NewRunner(c *Compiled, j *Journal, have map[string]Record, opts Options) *Runner {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.UnitBudget <= 0 {
		opts.UnitBudget = 2 * time.Minute
		if ms := c.Manifest.UnitBudgetMS; ms > 0 {
			opts.UnitBudget = time.Duration(ms) * time.Millisecond
		}
	}
	if have == nil {
		have = map[string]Record{}
	}
	return &Runner{
		compiled:   c,
		journal:    j,
		have:       have,
		opts:       opts,
		byProblem:  map[string]int{},
		newRecords: map[string]Record{},
	}
}

// Records returns the records this run produced (not the resumed ones).
func (r *Runner) Records() map[string]Record {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]Record, len(r.newRecords))
	for k, v := range r.newRecords {
		out[k] = v
	}
	return out
}

// Progress snapshots the run.
func (r *Runner) Progress() Progress {
	p := Progress{
		Total:    len(r.compiled.Units),
		Done:     int(r.done.Load()),
		Skipped:  int(r.skipped.Load()),
		Memoized: int(r.memoized.Load()),
		Executed: int(r.executed.Load()),
		Failed:   int(r.failed.Load()),
		TimedOut: int(r.timedOut.Load()),
	}
	if s := r.started.Load(); s > 0 {
		elapsed := time.Since(time.Unix(0, s))
		p.ElapsedMS = float64(elapsed) / float64(time.Millisecond)
		if exec := p.Executed; exec > 0 {
			remaining := p.Total - p.Done
			if remaining > 0 {
				perUnit := elapsed / time.Duration(exec)
				workers := r.opts.Workers
				eta := perUnit * time.Duration(remaining) / time.Duration(workers)
				p.ETAMS = float64(eta) / float64(time.Millisecond)
			}
		}
	}
	r.mu.Lock()
	if len(r.byProblem) > 0 {
		p.FailuresByProblem = make(map[string]int, len(r.byProblem))
		for k, v := range r.byProblem {
			p.FailuresByProblem[k] = v
		}
	}
	r.mu.Unlock()
	return p
}

// Run executes the campaign. It returns ctx.Err() when interrupted (with
// the journal holding everything finished so far), the first journal write
// error if persistence fails — running on without durability would break
// the resume contract — and nil when every unit is journaled.
func (r *Runner) Run(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	r.started.Store(time.Now().UnixNano())

	units := r.compiled.Units
	workers := r.opts.Workers
	if workers > len(units) {
		workers = len(units)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	var journalErr atomic.Value // error; first append failure aborts the run
	abort, cancelAbort := context.WithCancel(ctx)
	defer cancelAbort()
	perWorker := 0
	if r.opts.KernelWorkers > 0 && workers > 0 {
		perWorker = r.opts.KernelWorkers / workers
		if perWorker < 1 {
			perWorker = 1
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		var pool *kernel.Pool
		if perWorker > 1 {
			pool = kernel.New(perWorker)
			defer pool.Close()
		}
		go func() {
			defer wg.Done()
			for abort.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= len(units) {
					return
				}
				u := units[i]
				if _, ok := r.have[u.ID]; ok {
					r.skipped.Add(1)
					r.done.Add(1)
					if r.opts.OnSkip != nil {
						r.opts.OnSkip(u)
					}
					continue
				}
				if r.opts.Memo != nil {
					if rec, ok := r.memoRecord(u); ok {
						if err := r.journal.Append(rec); err != nil {
							journalErr.Store(err)
							cancelAbort()
							return
						}
						r.recordMemo(rec)
						continue
					}
				}
				rec, ran := r.runUnit(abort, u, pool)
				if !ran {
					continue // canceled mid-unit: not journaled, rerun on resume
				}
				if err := r.journal.Append(rec); err != nil {
					journalErr.Store(err)
					cancelAbort()
					return
				}
				r.record(rec)
			}
		}()
	}
	wg.Wait()
	if err, _ := journalErr.Load().(error); err != nil {
		return err
	}
	if err := r.journal.Sync(); err != nil {
		return fmt.Errorf("campaign: sync journal: %w", err)
	}
	return ctx.Err()
}

// record books a freshly journaled record into the counters and, for OK
// outcomes, publishes it to the cross-campaign solve cache.
func (r *Runner) record(rec Record) {
	r.executed.Add(1)
	r.done.Add(1)
	switch rec.Outcome {
	case OutcomeFailed:
		r.failed.Add(1)
		r.bumpFailure(rec.Unit.Problem)
	case OutcomeTimedOut:
		r.timedOut.Add(1)
		r.bumpFailure(rec.Unit.Problem)
	}
	r.mu.Lock()
	r.newRecords[rec.ID] = rec
	r.mu.Unlock()
	if r.opts.Memo != nil && rec.Outcome == OutcomeOK {
		// Only OK records are cached: a timeout or failure is an artifact
		// of this machine and budget, not of the unit's content, and must
		// not short-circuit retries elsewhere.
		if b, err := json.Marshal(rec); err == nil {
			r.opts.Memo.Put(memo.UnitKey(rec.ID), b)
		}
	}
	if r.opts.OnRecord != nil {
		r.opts.OnRecord(rec)
	}
}

// memoRecord resolves a unit from the cross-campaign solve cache. A
// payload is trusted only if it decodes to a record carrying exactly
// this unit (same content-derived ID and coordinates) with an OK
// outcome; anything else is treated as a miss and the unit executes.
func (r *Runner) memoRecord(u Unit) (Record, bool) {
	raw, ok := r.opts.Memo.Get(memo.UnitKey(u.ID))
	if !ok {
		return Record{}, false
	}
	var rec Record
	if err := json.Unmarshal(raw, &rec); err != nil ||
		rec.ID != u.ID || rec.Unit != u || rec.Outcome != OutcomeOK {
		return Record{}, false
	}
	r.opts.Recorder.MemoHit(memo.UnitKey(u.ID), "hit", len(raw))
	return rec, true
}

// recordMemo books a cache-satisfied unit: done, but neither executed
// nor journal-skipped. It fires OnMemo instead of OnRecord/OnSkip so
// observers can account the three paths separately.
func (r *Runner) recordMemo(rec Record) {
	r.memoized.Add(1)
	r.done.Add(1)
	r.mu.Lock()
	r.newRecords[rec.ID] = rec
	r.mu.Unlock()
	if r.opts.OnMemo != nil {
		r.opts.OnMemo(rec)
	}
}

func (r *Runner) bumpFailure(problem string) {
	r.mu.Lock()
	r.byProblem[problem]++
	r.mu.Unlock()
}

// runUnit executes one unit under the sandbox with its deadline. ran is
// false only when the campaign context ended before the unit produced a
// journalable outcome.
func (r *Runner) runUnit(ctx context.Context, u Unit, pool *kernel.Pool) (rec Record, ran bool) {
	return ExecuteUnitPooled(ctx, r.compiled, u, r.opts.UnitBudget, r.opts.Recorder, pool)
}

// ExecuteUnit runs one unit of a compiled campaign under the sandbox with
// the given wall-clock budget (<= 0 means the manifest's unit budget, or
// the 2-minute default) and returns its journalable record. ran is false
// only when ctx ended before the unit produced an outcome — the unit is
// unfinished and must be rerun, or re-leased, later. ExecuteUnit is the
// single-unit core shared by the local Runner and the distributed worker,
// which is what keeps locally and remotely executed records identical.
func ExecuteUnit(ctx context.Context, c *Compiled, u Unit, budget time.Duration) (rec Record, ran bool) {
	return ExecuteUnitTraced(ctx, c, u, budget, nil)
}

// ExecuteUnitTraced is ExecuteUnit with a flight recorder: the unit's
// lifecycle (UnitStart/UnitEnd) and its sandbox outcome are emitted as
// trace events. The record returned is identical to ExecuteUnit's — the
// recorder observes, it never participates.
func ExecuteUnitTraced(ctx context.Context, c *Compiled, u Unit, budget time.Duration, rtrace *trace.Recorder) (rec Record, ran bool) {
	return ExecuteUnitPooled(ctx, c, u, budget, rtrace, nil)
}

// ExecuteUnitPooled is ExecuteUnitTraced with a kernel pool: the unit's
// solver kernels run on pool's persistent workers (nil = sequential). The
// kernels are bitwise deterministic, so the record is identical for every
// pool width — the pool buys wall-clock time, nothing else.
func ExecuteUnitPooled(ctx context.Context, c *Compiled, u Unit, budget time.Duration, rtrace *trace.Recorder, pool *kernel.Pool) (rec Record, ran bool) {
	if budget <= 0 {
		budget = 2 * time.Minute
		if ms := c.Manifest.UnitBudgetMS; ms > 0 {
			budget = time.Duration(ms) * time.Millisecond
		}
	}
	rtrace.UnitStart(u.ID)
	defer func() {
		if !ran {
			rtrace.UnitEnd(u.ID, "canceled", 0)
			return
		}
		rtrace.UnitEnd(u.ID, rec.Outcome, rec.ElapsedMS)
	}()
	p := c.Problems[u.Problem]
	cfg, err := c.SweepConfig(u)
	cfg.Pool = pool
	if err != nil {
		// Compile guarantees parseable units; treat the impossible as a
		// failed unit rather than wedging the campaign.
		return Record{ID: u.ID, Unit: u, Outcome: OutcomeFailed, Err: err.Error(),
			Point: capPoint(p, u)}, true
	}

	start := time.Now()
	uctx, cancel := context.WithTimeout(ctx, budget)
	defer cancel()
	var pt expt.SweepPoint
	rep := sandbox.RunCtx(uctx, 0, func() error {
		pt = expt.RunPoint(uctx, p, cfg, u.Site)
		return nil
	})
	elapsed := float64(time.Since(start)) / float64(time.Millisecond)
	rtrace.SandboxOutcome(0, rep.Outcome.String(), rep.Usable(), elapsed)

	if ctx.Err() != nil {
		// Campaign-level cancellation: the unit is not finished, leave it
		// for the resumed run.
		return Record{}, false
	}
	switch {
	case rep.Outcome == sandbox.OK && pt.AggregateInner == u.Site:
		return Record{ID: u.ID, Unit: u, Point: pt, Outcome: OutcomeOK, ElapsedMS: elapsed}, true
	case errors.Is(uctx.Err(), context.DeadlineExceeded):
		// The per-unit deadline fired — whether the sandbox reported the
		// cancellation or the solver noticed it first and returned a zero
		// point. The abandoned guest may still be running; do not touch pt
		// (the sandbox may have returned without waiting for the
		// goroutine). Journal the cap, like a loud non-convergence.
		return Record{ID: u.ID, Unit: u, Point: capPoint(p, u), Outcome: OutcomeTimedOut,
			Err: fmt.Sprintf("unit exceeded %v budget", budget), ElapsedMS: elapsed}, true
	default:
		errMsg := "experiment returned no point"
		if rep.Err != nil {
			errMsg = rep.Err.Error()
		}
		return Record{ID: u.ID, Unit: u, Point: capPoint(p, u), Outcome: OutcomeFailed,
			Err: errMsg, ElapsedMS: elapsed}, true
	}
}

// capPoint is the journaled point for a unit that produced no measurement:
// not converged at the outer cap, mirroring how expt records loud failures.
func capPoint(p *expt.Problem, u Unit) expt.SweepPoint {
	pt := expt.SweepPoint{AggregateInner: u.Site}
	if p != nil {
		pt.OuterIters = p.MaxOuter
	}
	return pt
}
