package campaign

import (
	"bytes"
	"context"
	"path/filepath"
	"testing"

	"sdcgmres/internal/memo"
)

// runWithMemo executes the test campaign into a fresh journal with the
// given (possibly nil) cache and returns its records, progress and
// aggregated CSV.
func runWithMemo(t *testing.T, c *Compiled, journal string, cache *memo.Cache) (map[string]Record, Progress, []byte) {
	t.Helper()
	j, have, err := OpenJournal(journal)
	if err != nil {
		t.Fatalf("open journal: %v", err)
	}
	defer j.Close()
	r := NewRunner(c, j, have, Options{Workers: 2, Memo: cache})
	if err := r.Run(context.Background()); err != nil {
		t.Fatalf("run: %v", err)
	}
	recs := map[string]Record{}
	for id, rec := range have {
		recs[id] = rec
	}
	for id, rec := range r.Records() {
		recs[id] = rec
	}
	series, err := c.Aggregate(recs)
	if err != nil {
		t.Fatalf("aggregate: %v", err)
	}
	var buf bytes.Buffer
	if err := series[0].WriteCSV(&buf); err != nil {
		t.Fatalf("csv: %v", err)
	}
	return recs, r.Progress(), buf.Bytes()
}

// TestMemoCrossCampaignByteIdentity runs the same units through two
// independent journals sharing one cache: the second run must execute
// nothing, satisfy every unit from the cache, and aggregate to a
// byte-identical CSV.
func TestMemoCrossCampaignByteIdentity(t *testing.T) {
	c := compileTest(t)
	dir := t.TempDir()
	cache := memo.New(memo.Config{})

	recsA, progA, csvA := runWithMemo(t, c, filepath.Join(dir, "a.jsonl"), cache)
	if progA.Executed != len(c.Units) || progA.Memoized != 0 {
		t.Fatalf("first run: executed %d memoized %d, want %d/0", progA.Executed, progA.Memoized, len(c.Units))
	}

	recsB, progB, csvB := runWithMemo(t, c, filepath.Join(dir, "b.jsonl"), cache)
	if progB.Memoized != len(c.Units) || progB.Executed != 0 {
		t.Fatalf("second run: executed %d memoized %d, want 0/%d", progB.Executed, progB.Memoized, len(c.Units))
	}
	if !bytes.Equal(csvA, csvB) {
		t.Fatalf("memoized CSV differs from fresh CSV:\n%s\nvs\n%s", csvA, csvB)
	}
	for id, a := range recsA {
		b, ok := recsB[id]
		if !ok {
			t.Fatalf("memoized run lost record %s", id)
		}
		if a != b {
			t.Fatalf("record %s differs:\nfresh: %+v\nmemo:  %+v", id, a, b)
		}
	}
	st := cache.Stats()
	if st.Hits < int64(len(c.Units)) {
		t.Fatalf("cache hits = %d, want >= %d", st.Hits, len(c.Units))
	}
}

// TestMemoNilCacheByteIdentity proves a nil cache changes nothing: same
// records, same CSV, zero memoized units.
func TestMemoNilCacheByteIdentity(t *testing.T) {
	c := compileTest(t)
	dir := t.TempDir()
	_, progA, csvA := runWithMemo(t, c, filepath.Join(dir, "plain.jsonl"), nil)
	if progA.Memoized != 0 {
		t.Fatalf("nil cache memoized %d units", progA.Memoized)
	}
	_, _, csvB := runWithMemo(t, c, filepath.Join(dir, "cached.jsonl"), memo.New(memo.Config{}))
	if !bytes.Equal(csvA, csvB) {
		t.Fatal("cache-enabled run's CSV differs from the nil-cache run's")
	}
}

// TestMemoRejectsForeignPayload plants a mismatched record under a unit's
// key: the runner must treat it as a miss and execute the unit.
func TestMemoRejectsForeignPayload(t *testing.T) {
	c := compileTest(t)
	cache := memo.New(memo.Config{})
	u := c.Units[0]
	cache.Put(memo.UnitKey(u.ID), []byte(`{"id":"someone-else","outcome":"ok"}`))

	_, prog, _ := runWithMemo(t, c, filepath.Join(t.TempDir(), "j.jsonl"), cache)
	if prog.Executed != len(c.Units) {
		t.Fatalf("executed %d of %d; a foreign payload must not satisfy a unit", prog.Executed, len(c.Units))
	}
}
