package campaign

import (
	"bytes"
	"context"
	"errors"
	"path/filepath"
	"sync/atomic"
	"testing"

	"sdcgmres/internal/expt"
)

// runToCSV aggregates a record set into the campaign's single series and
// renders it through the shared CSV writer.
func runToCSV(t *testing.T, c *Compiled, recs map[string]Record) []byte {
	t.Helper()
	series, err := c.Aggregate(recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 1 {
		t.Fatalf("series = %d, want 1", len(series))
	}
	var buf bytes.Buffer
	if err := series[0].WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestUninterruptedMatchesExptSweep pins the aggregation contract: a campaign
// run over the same sites as an in-memory expt.Sweep must render a
// byte-identical CSV.
func TestUninterruptedMatchesExptSweep(t *testing.T) {
	c := compileTest(t)
	path := filepath.Join(t.TempDir(), "full.jsonl")
	j, have, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	r := NewRunner(c, j, have, Options{Workers: 2})
	if err := r.Run(context.Background()); err != nil {
		t.Fatalf("run: %v", err)
	}
	prog := r.Progress()
	if prog.Executed != len(c.Units) || prog.Done != len(c.Units) || prog.Failed != 0 || prog.TimedOut != 0 {
		t.Fatalf("progress: %+v", prog)
	}
	campaignCSV := runToCSV(t, c, r.Records())

	// The one-shot path over the same series.
	u := c.Units[0]
	cfg, err := c.SweepConfig(u)
	if err != nil {
		t.Fatal(err)
	}
	p := c.Problems[u.Problem]
	points := expt.Sweep(context.Background(), p, cfg)
	var direct bytes.Buffer
	if err := expt.WriteSweepCSV(&direct, p.Name, cfg, points); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(campaignCSV, direct.Bytes()) {
		t.Fatalf("campaign CSV diverges from expt.Sweep CSV:\n--- campaign ---\n%s\n--- expt ---\n%s",
			campaignCSV, direct.Bytes())
	}
}

// TestKillAndResume is the acceptance criterion: interrupt a campaign at
// roughly half completion, resume it against the same journal, and require
// (a) the resumed run executes only the units the journal is missing and
// (b) the aggregated CSV is byte-identical to an uninterrupted run's.
func TestKillAndResume(t *testing.T) {
	c := compileTest(t)
	total := len(c.Units)

	// Reference: uninterrupted run.
	refPath := filepath.Join(t.TempDir(), "ref.jsonl")
	jr, haveRef, err := OpenJournal(refPath)
	if err != nil {
		t.Fatal(err)
	}
	rr := NewRunner(c, jr, haveRef, Options{Workers: 2})
	if err := rr.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	jr.Close()
	refRecs, err := LoadJournal(refPath)
	if err != nil {
		t.Fatal(err)
	}
	refCSV := runToCSV(t, c, refRecs)

	// First run: cancel once roughly half the units are journaled.
	path := filepath.Join(t.TempDir(), "campaign.jsonl")
	j1, have1, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var journaled atomic.Int64
	r1 := NewRunner(c, j1, have1, Options{
		Workers: 2,
		OnRecord: func(Record) {
			if journaled.Add(1) >= int64(total/2) {
				cancel()
			}
		},
	})
	if err := r1.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run err = %v, want context.Canceled", err)
	}
	j1.Close()

	partial, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(partial) == 0 || len(partial) >= total {
		t.Fatalf("interruption journaled %d of %d units; want a strict subset", len(partial), total)
	}

	// Resume: same manifest, same journal. Journaled units must be skipped.
	j2, have2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(have2) != len(partial) {
		t.Fatalf("reopen found %d records, want %d", len(have2), len(partial))
	}
	r2 := NewRunner(c, j2, have2, Options{Workers: 2})
	if err := r2.Run(context.Background()); err != nil {
		t.Fatalf("resume: %v", err)
	}
	j2.Close()

	prog := r2.Progress()
	if prog.Skipped != len(partial) {
		t.Fatalf("resume skipped %d units, want %d (journal must satisfy them)", prog.Skipped, len(partial))
	}
	if prog.Executed != total-len(partial) {
		t.Fatalf("resume executed %d units, want %d (must not re-run journaled units)",
			prog.Executed, total-len(partial))
	}
	if prog.Done != total {
		t.Fatalf("resume done = %d, want %d", prog.Done, total)
	}

	// Aggregate of interrupted+resumed must be byte-identical to the
	// uninterrupted reference.
	finalRecs, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := c.Remaining(finalRecs); n != 0 {
		t.Fatalf("%d units still missing after resume", n)
	}
	gotCSV := runToCSV(t, c, finalRecs)
	if !bytes.Equal(gotCSV, refCSV) {
		t.Fatalf("resumed CSV diverges from uninterrupted run:\n--- resumed ---\n%s\n--- reference ---\n%s",
			gotCSV, refCSV)
	}
}

// TestAggregateMarksMissing pins the partial-aggregate semantics: units
// without records yield zero points and a Missing count, exactly like a
// cancelled expt.Sweep.
func TestAggregateMarksMissing(t *testing.T) {
	c := compileTest(t)
	recs := map[string]Record{}
	u := c.Units[0]
	recs[u.ID] = Record{ID: u.ID, Unit: u,
		Point: expt.SweepPoint{AggregateInner: u.Site, OuterIters: 7, Converged: true}, Outcome: OutcomeOK}
	series, err := c.Aggregate(recs)
	if err != nil {
		t.Fatal(err)
	}
	s := series[0]
	if s.Complete() {
		t.Fatal("series with missing units reported complete")
	}
	if s.Missing != len(c.Units)-1 {
		t.Fatalf("missing = %d, want %d", s.Missing, len(c.Units)-1)
	}
	if s.Points[0].OuterIters != 7 {
		t.Fatalf("recorded point not folded: %+v", s.Points[0])
	}
	for _, pt := range s.Points[1:] {
		if pt.AggregateInner != 0 {
			t.Fatalf("missing unit produced non-zero point: %+v", pt)
		}
	}
	if c.Remaining(recs) != len(c.Units)-1 {
		t.Fatalf("remaining = %d", c.Remaining(recs))
	}
}

// TestUnitDeadline pins the per-unit budget path: an absurdly small budget
// journals timed-out cap points instead of wedging the run.
func TestUnitDeadline(t *testing.T) {
	c := compileTest(t)
	path := filepath.Join(t.TempDir(), "deadline.jsonl")
	j, have, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	r := NewRunner(c, j, have, Options{Workers: 2, UnitBudget: 1})
	if err := r.Run(context.Background()); err != nil {
		t.Fatalf("run: %v", err)
	}
	prog := r.Progress()
	if prog.Done != len(c.Units) {
		t.Fatalf("done = %d, want %d", prog.Done, len(c.Units))
	}
	if prog.TimedOut == 0 {
		t.Fatalf("1ns budget produced no timeouts: %+v", prog)
	}
	p := c.Problems[c.Units[0].Problem]
	for _, rec := range r.Records() {
		if rec.Outcome != OutcomeTimedOut {
			continue
		}
		if rec.Point.AggregateInner != rec.Unit.Site || rec.Point.OuterIters != p.MaxOuter {
			t.Fatalf("timed-out record must hold the cap point: %+v", rec)
		}
	}
	if prog.FailuresByProblem[c.Units[0].Problem] == 0 {
		t.Fatalf("failures_by_problem not populated: %+v", prog)
	}
}
