package campaign

import (
	"bytes"
	"context"
	"path/filepath"
	"testing"

	"sdcgmres/internal/trace"
)

// TestTracingLeavesCSVByteIdentical is the acceptance check for the
// campaign trace seam: the flight recorder observes unit execution but
// must never perturb it, so the aggregate CSV of a traced run is
// byte-for-byte the CSV of an untraced one.
func TestTracingLeavesCSVByteIdentical(t *testing.T) {
	c := compileTest(t)
	runCampaign := func(name string, rec *trace.Recorder) []byte {
		j, have, err := OpenJournal(filepath.Join(t.TempDir(), name))
		if err != nil {
			t.Fatal(err)
		}
		defer j.Close()
		r := NewRunner(c, j, have, Options{Workers: 2, Recorder: rec})
		if err := r.Run(context.Background()); err != nil {
			t.Fatalf("run: %v", err)
		}
		return runToCSV(t, c, r.Records())
	}
	plain := runCampaign("plain.jsonl", nil)
	rec := trace.NewRecorder(1 << 14)
	traced := runCampaign("traced.jsonl", rec)
	if !bytes.Equal(plain, traced) {
		t.Fatalf("tracing changed the aggregate CSV:\n--- off ---\n%s\n--- on ---\n%s", plain, traced)
	}

	// The recorder must have seen the full unit lifecycle.
	starts, ends := 0, 0
	for _, ev := range rec.Events() {
		switch ev.Kind {
		case trace.KindUnitStart:
			starts++
		case trace.KindUnitEnd:
			ends++
			if ev.Label == "" || ev.Note == "" {
				t.Fatalf("unit-end missing unit ID or outcome: %+v", ev)
			}
		}
	}
	if starts != len(c.Units) || ends != len(c.Units) {
		t.Fatalf("unit spans %d/%d, want %d each", starts, ends, len(c.Units))
	}
}
