// Package frame implements per-record CRC32C framing shared by the
// campaign journal (text lines) and the results store (binary segments).
// Both formats carry the same guarantee: a record that reads back did so
// bit-exactly, and a torn or corrupted tail — the footprint of a crash
// mid-append or a disk scribble on the last block — is detectable and
// truncatable without guessing at record boundaries.
package frame

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// castagnoli is the CRC32C polynomial table (hardware-accelerated on
// amd64/arm64, and the checksum every journaling store seems to settle on).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC32C of p.
func Checksum(p []byte) uint32 { return crc32.Checksum(p, castagnoli) }

// Framing errors.
var (
	// ErrCorrupt: a framed record's payload does not match its checksum.
	ErrCorrupt = errors.New("frame: checksum mismatch")
	// ErrTorn: a binary stream ends mid-frame (short header, short payload,
	// or a trailing checksum mismatch) — the callers' cue to truncate at
	// ValidBytes.
	ErrTorn = errors.New("frame: torn trailing record")
	// ErrTooLarge: a binary frame header claims a payload over MaxRecord.
	ErrTooLarge = errors.New("frame: record exceeds size cap")
)

// ---------------------------------------------------------------------------
// Text-line framing (the campaign journal)
//
// A framed line is "xxxxxxxx <payload>\n": eight lowercase hex CRC32C digits
// of the payload, one space, the payload itself. Unframed lines (legacy
// journals, whose payloads begin with '{') parse through unchanged, so old
// journals stay readable.

// lineCRCLen is the hex checksum width of a framed line.
const lineCRCLen = 8

// AppendLine appends payload to dst as one framed journal line, newline
// included, and returns the extended slice.
func AppendLine(dst, payload []byte) []byte {
	var hexDigits [lineCRCLen]byte
	sum := Checksum(payload)
	for i := lineCRCLen - 1; i >= 0; i-- {
		hexDigits[i] = "0123456789abcdef"[sum&0xf]
		sum >>= 4
	}
	dst = append(dst, hexDigits[:]...)
	dst = append(dst, ' ')
	dst = append(dst, payload...)
	return append(dst, '\n')
}

// ParseLine splits one journal line (without its newline) into its payload.
// framed reports whether the line carried a checksum; err is ErrCorrupt when
// a framed payload fails verification. Lines that do not look framed are
// returned verbatim with framed == false — the legacy-format path.
func ParseLine(line []byte) (payload []byte, framed bool, err error) {
	if len(line) < lineCRCLen+1 || line[lineCRCLen] != ' ' {
		return line, false, nil
	}
	var sum uint32
	for _, c := range line[:lineCRCLen] {
		switch {
		case c >= '0' && c <= '9':
			sum = sum<<4 | uint32(c-'0')
		case c >= 'a' && c <= 'f':
			sum = sum<<4 | uint32(c-'a'+10)
		default:
			return line, false, nil
		}
	}
	payload = line[lineCRCLen+1:]
	if Checksum(payload) != sum {
		return nil, true, ErrCorrupt
	}
	return payload, true, nil
}

// ---------------------------------------------------------------------------
// Binary framing (the results store's segment log)
//
// A frame is [payload length: uint32 LE][CRC32C(payload): uint32 LE][payload].

// headerLen is the binary frame header size.
const headerLen = 8

// MaxRecord caps one binary frame's payload. A campaign record marshals to
// a few hundred bytes; the cap only exists so a corrupt length field cannot
// drive a giant allocation.
const MaxRecord = 16 << 20

// WriteRecord writes payload as one binary frame and returns the bytes
// written.
func WriteRecord(w io.Writer, payload []byte) (int, error) {
	if len(payload) > MaxRecord {
		return 0, ErrTooLarge
	}
	var hdr [headerLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], Checksum(payload))
	if n, err := w.Write(hdr[:]); err != nil {
		return n, err
	}
	n, err := w.Write(payload)
	return headerLen + n, err
}

// EncodedLen returns the on-disk size of one binary frame.
func EncodedLen(payload []byte) int64 { return int64(headerLen + len(payload)) }

// Reader decodes a stream of binary frames, tracking the offset just past
// the last frame that verified — the truncation point for a torn tail.
type Reader struct {
	br    *bufio.Reader
	valid int64
}

// NewReader wraps r for frame decoding.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 1<<16)}
}

// ValidBytes returns the stream offset just past the last verified frame.
func (fr *Reader) ValidBytes() int64 { return fr.valid }

// Next returns the next frame's payload. It returns io.EOF at a clean end
// of stream, ErrTorn when the stream ends mid-frame or the trailing frame
// fails its checksum, and ErrTooLarge for an implausible length header.
// The returned slice is freshly allocated and owned by the caller.
func (fr *Reader) Next() ([]byte, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(fr.br, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, ErrTorn // short header
	}
	size := binary.LittleEndian.Uint32(hdr[0:4])
	want := binary.LittleEndian.Uint32(hdr[4:8])
	if size > MaxRecord {
		return nil, fmt.Errorf("%w (%d bytes)", ErrTooLarge, size)
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(fr.br, payload); err != nil {
		return nil, ErrTorn // short payload
	}
	if Checksum(payload) != want {
		return nil, ErrTorn
	}
	fr.valid += EncodedLen(payload)
	return payload, nil
}
