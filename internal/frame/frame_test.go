package frame

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestLineRoundTrip(t *testing.T) {
	payloads := []string{`{"id":"abc"}`, "", "x", `{"nested":{"a":[1,2,3]}}`}
	for _, p := range payloads {
		line := AppendLine(nil, []byte(p))
		if line[len(line)-1] != '\n' {
			t.Fatalf("line %q missing newline", line)
		}
		got, framed, err := ParseLine(line[:len(line)-1])
		if err != nil {
			t.Fatalf("ParseLine(%q): %v", line, err)
		}
		if !framed {
			t.Fatalf("ParseLine(%q): not recognized as framed", line)
		}
		if string(got) != p {
			t.Fatalf("ParseLine round trip: got %q want %q", got, p)
		}
	}
}

func TestLineLegacyPassThrough(t *testing.T) {
	legacy := []byte(`{"id":"abc","outcome":"ok"}`)
	got, framed, err := ParseLine(legacy)
	if err != nil || framed {
		t.Fatalf("legacy line: framed=%v err=%v", framed, err)
	}
	if !bytes.Equal(got, legacy) {
		t.Fatalf("legacy line altered: %q", got)
	}
	// Short lines and lines with a non-hex prefix also pass through.
	for _, s := range []string{"", "x", "deadbeef", "deadbeefX {}", "DEADBEEF {}"} {
		if _, framed, err := ParseLine([]byte(s)); framed || err != nil {
			t.Fatalf("ParseLine(%q): framed=%v err=%v, want pass-through", s, framed, err)
		}
	}
}

func TestLineCorruptionDetected(t *testing.T) {
	line := AppendLine(nil, []byte(`{"id":"abc"}`))
	line = line[:len(line)-1] // strip newline
	for i := range line {
		mutated := append([]byte(nil), line...)
		mutated[i] ^= 0x01
		_, framed, err := ParseLine(mutated)
		// Any single-bit flip must either surface ErrCorrupt or demote the
		// line to unframed (a flip in the checksum prefix can do that) —
		// never return a framed, verified, wrong payload.
		if framed && err == nil {
			payload := mutated[lineCRCLen+1:]
			if Checksum(payload) != Checksum(line[lineCRCLen+1:]) {
				t.Fatalf("flip at %d verified a corrupt payload", i)
			}
		}
		if err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at %d: unexpected error %v", i, err)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{[]byte("one"), {}, []byte(`{"k":"v"}`), bytes.Repeat([]byte("z"), 70000)}
	for _, p := range payloads {
		n, err := WriteRecord(&buf, p)
		if err != nil {
			t.Fatal(err)
		}
		if int64(n) != EncodedLen(p) {
			t.Fatalf("wrote %d bytes, EncodedLen says %d", n, EncodedLen(p))
		}
	}
	fr := NewReader(bytes.NewReader(buf.Bytes()))
	for i, p := range payloads {
		got, err := fr.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("frame %d: got %d bytes want %d", i, len(got), len(p))
		}
	}
	if _, err := fr.Next(); err != io.EOF {
		t.Fatalf("want io.EOF at end, got %v", err)
	}
	if fr.ValidBytes() != int64(buf.Len()) {
		t.Fatalf("ValidBytes %d, want %d", fr.ValidBytes(), buf.Len())
	}
}

func TestBinaryTornTail(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteRecord(&buf, []byte("first")); err != nil {
		t.Fatal(err)
	}
	whole := buf.Len()
	if _, err := WriteRecord(&buf, []byte("second-record")); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	// Every truncation point inside the second frame must yield exactly one
	// good frame and then ErrTorn, with ValidBytes at the first frame's end.
	for cut := whole + 1; cut < len(full); cut++ {
		fr := NewReader(bytes.NewReader(full[:cut]))
		if _, err := fr.Next(); err != nil {
			t.Fatalf("cut %d: first frame: %v", cut, err)
		}
		if _, err := fr.Next(); !errors.Is(err, ErrTorn) {
			t.Fatalf("cut %d: want ErrTorn, got %v", cut, err)
		}
		if fr.ValidBytes() != int64(whole) {
			t.Fatalf("cut %d: ValidBytes %d, want %d", cut, fr.ValidBytes(), whole)
		}
	}

	// A bit flip in the second frame's payload is also a torn tail.
	flipped := append([]byte(nil), full...)
	flipped[len(flipped)-1] ^= 0x40
	fr := NewReader(bytes.NewReader(flipped))
	if _, err := fr.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := fr.Next(); !errors.Is(err, ErrTorn) {
		t.Fatalf("want ErrTorn on flipped payload, got %v", err)
	}
}

func TestBinarySizeCap(t *testing.T) {
	if _, err := WriteRecord(io.Discard, make([]byte, MaxRecord+1)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized write: got %v", err)
	}
	// A corrupt length header must not drive a giant allocation.
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	if _, err := NewReader(&buf).Next(); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized header: got %v", err)
	}
}
