// Package precond implements the classic preconditioners an FT-GMRES
// deployment would wrap around its inner solves: Jacobi (diagonal), SSOR
// sweeps, and ILU(0) — incomplete LU with zero fill-in on the CSR pattern.
//
// All implement krylov.Preconditioner (Apply solves M z = q approximately)
// and Transposable (ApplyTranspose solves Mᵀ z = q), which the
// preconditioner-aware detector bound needs: with right preconditioning the
// Arnoldi coefficients are bounded by ‖A M⁻¹‖ (the paper's Section V-B
// notes the bound is on "the norm of the preconditioned matrix"), and
// estimating that norm by power iteration on (AM⁻¹)ᵀ(AM⁻¹) requires the
// transpose application.
package precond

import (
	"fmt"
	"math"

	"sdcgmres/internal/krylov"
	"sdcgmres/internal/sparse"
)

// Transposable is a preconditioner that can also apply its transposed
// inverse, enabling norm estimation of the preconditioned operator.
type Transposable interface {
	krylov.Preconditioner
	// ApplyTranspose computes z = M⁻ᵀ q.
	ApplyTranspose(z, q []float64) error
}

// Jacobi is diagonal preconditioning: M = diag(A).
type Jacobi struct {
	inv []float64
}

// NewJacobi builds the Jacobi preconditioner, failing on a zero diagonal.
func NewJacobi(a *sparse.CSR) (*Jacobi, error) {
	d := a.Diagonal()
	inv := make([]float64, len(d))
	for i, v := range d {
		if v == 0 {
			return nil, fmt.Errorf("precond: jacobi needs a nonzero diagonal, row %d is zero", i)
		}
		inv[i] = 1 / v
	}
	return &Jacobi{inv: inv}, nil
}

// Apply implements krylov.Preconditioner.
func (j *Jacobi) Apply(z, q []float64) error {
	if len(z) != len(j.inv) || len(q) != len(j.inv) {
		return fmt.Errorf("precond: jacobi dimension mismatch")
	}
	for i := range z {
		z[i] = q[i] * j.inv[i]
	}
	return nil
}

// ApplyTranspose implements Transposable (diagonal ⇒ symmetric).
func (j *Jacobi) ApplyTranspose(z, q []float64) error { return j.Apply(z, q) }

// SSOR is the symmetric successive-over-relaxation preconditioner
// M = (D/ω + L) · (D/ω)⁻¹ · (D/ω + U) · ω/(2−ω), applied via one forward
// and one backward sweep.
type SSOR struct {
	a     *sparse.CSR
	diag  []float64
	omega float64
}

// NewSSOR builds the SSOR preconditioner with relaxation factor omega in
// (0, 2); omega = 1 gives symmetric Gauss-Seidel.
func NewSSOR(a *sparse.CSR, omega float64) (*SSOR, error) {
	if a.Rows() != a.Cols() {
		return nil, fmt.Errorf("precond: SSOR needs a square matrix")
	}
	if omega <= 0 || omega >= 2 {
		return nil, fmt.Errorf("precond: SSOR omega %g outside (0,2)", omega)
	}
	d := a.Diagonal()
	for i, v := range d {
		if v == 0 {
			return nil, fmt.Errorf("precond: SSOR needs a nonzero diagonal, row %d is zero", i)
		}
	}
	return &SSOR{a: a, diag: d, omega: omega}, nil
}

// Apply implements krylov.Preconditioner: z = M⁻¹ q via a forward then a
// backward triangular sweep.
func (s *SSOR) Apply(z, q []float64) error {
	n := s.a.Rows()
	if len(z) != n || len(q) != n {
		return fmt.Errorf("precond: SSOR dimension mismatch")
	}
	scale := s.omega * (2 - s.omega)
	// Forward: (D/ω + L) y = q.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := q[i]
		cols, vals := s.a.Row(i)
		for k, j := range cols {
			if j < i {
				sum -= vals[k] * y[j]
			}
		}
		y[i] = sum * s.omega / s.diag[i]
	}
	// Scale by D/ω then backward: (D/ω + U) z = (D/ω) y.
	for i := 0; i < n; i++ {
		y[i] *= s.diag[i] / s.omega
	}
	for i := n - 1; i >= 0; i-- {
		sum := y[i]
		cols, vals := s.a.Row(i)
		for k, j := range cols {
			if j > i {
				sum -= vals[k] * z[j]
			}
		}
		z[i] = sum * s.omega / s.diag[i]
	}
	for i := range z {
		z[i] *= scale
	}
	return nil
}

// ApplyTranspose implements Transposable: M(ω)ᵀ swaps the roles of L and
// U, i.e., it is the SSOR preconditioner of Aᵀ.
func (s *SSOR) ApplyTranspose(z, q []float64) error {
	t := s.transposed()
	return t.Apply(z, q)
}

func (s *SSOR) transposed() *SSOR {
	return &SSOR{a: s.a.Transpose(), diag: s.diag, omega: s.omega}
}

// ILU0 is the incomplete LU factorization with zero fill-in: L and U share
// A's sparsity pattern exactly. Apply performs the two triangular solves.
type ILU0 struct {
	// lu stores the combined factors on A's pattern: strictly-lower
	// entries are L (unit diagonal implied), diagonal and upper are U.
	lu   *sparse.CSR
	diag []int // index of the diagonal entry within each row of lu
}

// NewILU0 computes the ILU(0) factorization (the IKJ variant). It fails if
// a pivot becomes zero — for the diagonally dominant matrices of this
// study that cannot happen, but arbitrary Matrix Market inputs can trip it.
func NewILU0(a *sparse.CSR) (*ILU0, error) {
	n := a.Rows()
	if a.Cols() != n {
		return nil, fmt.Errorf("precond: ILU(0) needs a square matrix")
	}
	// Deep-copy values (pattern is shared semantics but CSR is immutable,
	// so rebuild from triplets).
	lu := sparse.NewCSRFromTriplets(n, n, a.Triplets())
	diag := make([]int, n)
	// Column-position scratch for the active row.
	pos := make([]int, n)
	for i := range pos {
		pos[i] = -1
	}

	cols, vals := rawRows(lu)
	for i := 0; i < n; i++ {
		ci, vi := cols[i], vals[i]
		diag[i] = -1
		for k, j := range ci {
			pos[j] = k
			if j == i {
				diag[i] = k
			}
		}
		if diag[i] == -1 {
			return nil, fmt.Errorf("precond: ILU(0) needs a structurally nonzero diagonal, row %d lacks one", i)
		}
		for k, kcol := range ci {
			if kcol >= i {
				break
			}
			ck, vk := cols[kcol], vals[kcol]
			dk := -1
			for kk, jj := range ck {
				if jj == kcol {
					dk = kk
					break
				}
			}
			if dk == -1 || vk[dk] == 0 {
				return nil, fmt.Errorf("precond: ILU(0) zero pivot at row %d", kcol)
			}
			vi[k] /= vk[dk]
			lik := vi[k]
			for kk := dk + 1; kk < len(ck); kk++ {
				if p := pos[ck[kk]]; p >= 0 {
					vi[p] -= lik * vk[kk]
				}
			}
		}
		if vi[diag[i]] == 0 {
			return nil, fmt.Errorf("precond: ILU(0) zero pivot at row %d", i)
		}
		for _, j := range ci {
			pos[j] = -1
		}
	}
	return &ILU0{lu: lu, diag: diag}, nil
}

// rawRows exposes per-row column/value slices of a CSR matrix.
func rawRows(m *sparse.CSR) (cols [][]int, vals [][]float64) {
	n := m.Rows()
	cols = make([][]int, n)
	vals = make([][]float64, n)
	for i := 0; i < n; i++ {
		cols[i], vals[i] = m.Row(i)
	}
	return cols, vals
}

// Apply implements krylov.Preconditioner: z = U⁻¹ L⁻¹ q.
func (p *ILU0) Apply(z, q []float64) error {
	n := p.lu.Rows()
	if len(z) != n || len(q) != n {
		return fmt.Errorf("precond: ILU(0) dimension mismatch")
	}
	// Forward: L y = q, unit diagonal.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := q[i]
		cols, vals := p.lu.Row(i)
		for k, j := range cols {
			if j >= i {
				break
			}
			sum -= vals[k] * y[j]
		}
		y[i] = sum
	}
	// Backward: U z = y.
	for i := n - 1; i >= 0; i-- {
		sum := y[i]
		cols, vals := p.lu.Row(i)
		d := p.diag[i]
		for k := d + 1; k < len(cols); k++ {
			sum -= vals[k] * z[cols[k]]
		}
		z[i] = sum / vals[d]
	}
	return nil
}

// ApplyTranspose implements Transposable: z = (LU)⁻ᵀ q = L⁻ᵀ U⁻ᵀ q.
func (p *ILU0) ApplyTranspose(z, q []float64) error {
	n := p.lu.Rows()
	if len(z) != n || len(q) != n {
		return fmt.Errorf("precond: ILU(0) dimension mismatch")
	}
	// Uᵀ is lower triangular: forward solve Uᵀ y = q. Column-oriented over
	// rows of U.
	y := make([]float64, n)
	copy(y, q)
	for i := 0; i < n; i++ {
		cols, vals := p.lu.Row(i)
		d := p.diag[i]
		y[i] /= vals[d]
		for k := d + 1; k < len(cols); k++ {
			y[cols[k]] -= vals[k] * y[i]
		}
	}
	// Lᵀ is upper triangular with unit diagonal: backward solve Lᵀ z = y.
	copy(z, y)
	for i := n - 1; i >= 0; i-- {
		cols, vals := p.lu.Row(i)
		for k, j := range cols {
			if j >= i {
				break
			}
			z[j] -= vals[k] * z[i]
		}
	}
	return nil
}

// Norm2EstPreconditioned estimates ‖A M⁻¹‖₂ by power iteration on
// (AM⁻¹)ᵀ(AM⁻¹) — the bound the Hessenberg detector must use when the
// inner solver is right-preconditioned (Section V-B: "the bound depends on
// the norm of the preconditioned matrix").
func Norm2EstPreconditioned(a *sparse.CSR, m Transposable, maxIter int, tol float64) (float64, error) {
	n := a.Rows()
	x := make([]float64, n)
	for i := range x {
		x[i] = 1 + 0.5*math.Sin(float64(2*i+1))
	}
	bx := make([]float64, n)
	tmp := make([]float64, n)
	prev := 0.0
	for it := 0; it < maxIter; it++ {
		nx := norm2(x)
		if nx == 0 {
			return 0, fmt.Errorf("precond: norm estimation collapsed")
		}
		scale(1/nx, x)
		// bx = A M⁻¹ x
		if err := m.Apply(tmp, x); err != nil {
			return 0, err
		}
		a.MatVec(bx, tmp)
		// x = M⁻ᵀ Aᵀ bx
		a.MatTVec(tmp, bx)
		if err := m.ApplyTranspose(x, tmp); err != nil {
			return 0, err
		}
		est := math.Sqrt(norm2(x))
		if prev > 0 && math.Abs(est-prev) <= tol*est {
			return est, nil
		}
		prev = est
	}
	return prev, nil
}

func norm2(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

func scale(a float64, x []float64) {
	for i := range x {
		x[i] *= a
	}
}

var (
	_ Transposable = (*Jacobi)(nil)
	_ Transposable = (*SSOR)(nil)
	_ Transposable = (*ILU0)(nil)
)
