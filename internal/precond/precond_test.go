package precond

import (
	"math"
	"math/rand"
	"testing"

	"sdcgmres/internal/gallery"
	"sdcgmres/internal/krylov"
	"sdcgmres/internal/sparse"
	"sdcgmres/internal/vec"
)

func onesRHS(a *sparse.CSR) []float64 {
	b := make([]float64, a.Rows())
	a.MatVec(b, vec.Ones(a.Cols()))
	return b
}

// --- Jacobi ---

func TestJacobiExactOnDiagonalMatrix(t *testing.T) {
	a := gallery.Diagonal([]float64{2, 4, -8})
	m, err := NewJacobi(a)
	if err != nil {
		t.Fatal(err)
	}
	z := make([]float64, 3)
	if err := m.Apply(z, []float64{2, 4, -8}); err != nil {
		t.Fatal(err)
	}
	for i, v := range z {
		if math.Abs(v-1) > 1e-15 {
			t.Fatalf("z[%d] = %g", i, v)
		}
	}
}

func TestJacobiRejectsZeroDiagonal(t *testing.T) {
	a := sparse.NewCSRFromTriplets(2, 2, []sparse.Triplet{{Row: 0, Col: 1, Val: 1}, {Row: 1, Col: 0, Val: 1}})
	if _, err := NewJacobi(a); err == nil {
		t.Fatal("expected zero-diagonal error")
	}
}

func TestJacobiTransposeIsSelf(t *testing.T) {
	a := gallery.Tridiag(5, -1, 3, -1)
	m, _ := NewJacobi(a)
	q := []float64{1, 2, 3, 4, 5}
	z1 := make([]float64, 5)
	z2 := make([]float64, 5)
	m.Apply(z1, q)
	m.ApplyTranspose(z2, q)
	for i := range z1 {
		if z1[i] != z2[i] {
			t.Fatal("Jacobi transpose differs")
		}
	}
}

// --- SSOR ---

func TestSSORParameterValidation(t *testing.T) {
	a := gallery.Tridiag(4, -1, 2, -1)
	for _, w := range []float64{0, -1, 2, 2.5} {
		if _, err := NewSSOR(a, w); err == nil {
			t.Fatalf("omega %g should be rejected", w)
		}
	}
	if _, err := NewSSOR(a, 1.0); err != nil {
		t.Fatal(err)
	}
}

// applyAsMatrix extracts the dense matrix of a linear map z = f(q).
func applyAsMatrix(n int, f func(z, q []float64) error) [][]float64 {
	m := make([][]float64, n)
	for j := 0; j < n; j++ {
		e := make([]float64, n)
		e[j] = 1
		z := make([]float64, n)
		if err := f(z, e); err != nil {
			panic(err)
		}
		for i := 0; i < n; i++ {
			if m[i] == nil {
				m[i] = make([]float64, n)
			}
			m[i][j] = z[i]
		}
	}
	return m
}

func TestSSORTransposeConsistency(t *testing.T) {
	// (M⁻¹)ᵀ extracted column-wise from Apply must equal ApplyTranspose.
	a := gallery.ConvectionDiffusion2D(3, 7, -2) // nonsymmetric, 9x9
	m, err := NewSSOR(a, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	fwd := applyAsMatrix(9, m.Apply)
	trn := applyAsMatrix(9, m.ApplyTranspose)
	for i := 0; i < 9; i++ {
		for j := 0; j < 9; j++ {
			if math.Abs(fwd[i][j]-trn[j][i]) > 1e-12 {
				t.Fatalf("SSOR transpose mismatch at (%d,%d): %g vs %g", i, j, fwd[i][j], trn[j][i])
			}
		}
	}
}

func TestSSORAcceleratesGMRES(t *testing.T) {
	a := gallery.Poisson2D(12)
	b := onesRHS(a)
	plain, err := krylov.GMRES(a, b, nil, krylov.Options{MaxIter: 144, Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewSSOR(a, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	pre, err := krylov.GMRES(a, b, nil, krylov.Options{MaxIter: 144, Tol: 1e-9, Precond: m})
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Converged || !pre.Converged {
		t.Fatalf("convergence: plain %v pre %v", plain.Converged, pre.Converged)
	}
	if pre.Iterations >= plain.Iterations {
		t.Fatalf("SSOR did not accelerate: %d vs %d iterations", pre.Iterations, plain.Iterations)
	}
	if tr := krylov.TrueResidual(a, b, pre.X); tr > 1e-8 {
		t.Fatalf("true residual %g", tr)
	}
}

// --- ILU(0) ---

func TestILU0ExactOnTriangular(t *testing.T) {
	// For a triangular matrix, ILU(0) is the exact factorization, so
	// preconditioned GMRES converges in one iteration.
	b := sparse.NewBuilder(5, 5)
	for i := 0; i < 5; i++ {
		b.Add(i, i, float64(i+2))
		if i+1 < 5 {
			b.Add(i, i+1, -1)
		}
	}
	a := b.Build()
	m, err := NewILU0(a)
	if err != nil {
		t.Fatal(err)
	}
	rhs := onesRHS(a)
	res, err := krylov.GMRES(a, rhs, nil, krylov.Options{MaxIter: 5, Tol: 1e-12, Precond: m})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Iterations > 1 {
		t.Fatalf("exact preconditioner should converge in 1 iteration, took %d", res.Iterations)
	}
}

func TestILU0ApplyInvertsLU(t *testing.T) {
	// M z = q means z = U⁻¹L⁻¹q; verify by re-multiplying with the dense
	// L·U product reconstructed from the factor storage.
	a := gallery.Poisson2D(4)
	m, err := NewILU0(a)
	if err != nil {
		t.Fatal(err)
	}
	n := a.Rows()
	rng := rand.New(rand.NewSource(9))
	q := make([]float64, n)
	for i := range q {
		q[i] = rng.NormFloat64()
	}
	z := make([]float64, n)
	if err := m.Apply(z, q); err != nil {
		t.Fatal(err)
	}
	// Reconstruct L (unit lower) and U from m.lu, then check L(Uz) = q.
	uz := make([]float64, n)
	for i := 0; i < n; i++ {
		cols, vals := m.lu.Row(i)
		var s float64
		for k, j := range cols {
			if j >= i {
				s += vals[k] * z[j]
			}
		}
		uz[i] = s
	}
	for i := 0; i < n; i++ {
		cols, vals := m.lu.Row(i)
		s := uz[i]
		for k, j := range cols {
			if j < i {
				s += vals[k] * uz[j]
			}
		}
		if math.Abs(s-q[i]) > 1e-10 {
			t.Fatalf("L U z != q at %d: %g vs %g", i, s, q[i])
		}
	}
}

func TestILU0TransposeConsistency(t *testing.T) {
	a := gallery.ConvectionDiffusion2D(3, 5, 3)
	m, err := NewILU0(a)
	if err != nil {
		t.Fatal(err)
	}
	fwd := applyAsMatrix(9, m.Apply)
	trn := applyAsMatrix(9, m.ApplyTranspose)
	for i := 0; i < 9; i++ {
		for j := 0; j < 9; j++ {
			if math.Abs(fwd[i][j]-trn[j][i]) > 1e-12 {
				t.Fatalf("ILU0 transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestILU0AcceleratesGMRESOnPoisson(t *testing.T) {
	a := gallery.Poisson2D(14)
	b := onesRHS(a)
	plain, err := krylov.GMRES(a, b, nil, krylov.Options{MaxIter: 196, Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewILU0(a)
	if err != nil {
		t.Fatal(err)
	}
	pre, err := krylov.GMRES(a, b, nil, krylov.Options{MaxIter: 196, Tol: 1e-9, Precond: m})
	if err != nil {
		t.Fatal(err)
	}
	if !pre.Converged {
		t.Fatal("ILU0-preconditioned solve did not converge")
	}
	if pre.Iterations >= plain.Iterations {
		t.Fatalf("ILU0 did not accelerate: %d vs %d iterations", pre.Iterations, plain.Iterations)
	}
	for i, v := range pre.X {
		if math.Abs(v-1) > 1e-7 {
			t.Fatalf("x[%d] = %g", i, v)
		}
	}
}

func TestILU0MissingDiagonalRejected(t *testing.T) {
	a := sparse.NewCSRFromTriplets(2, 2, []sparse.Triplet{{Row: 0, Col: 0, Val: 1}, {Row: 1, Col: 0, Val: 1}})
	if _, err := NewILU0(a); err == nil {
		t.Fatal("expected missing-diagonal error")
	}
}

// --- Preconditioned norm estimate / detector bound ---

func TestNorm2EstPreconditionedIdentityLikeCase(t *testing.T) {
	// M = A (Jacobi on a diagonal matrix): A M⁻¹ = I, norm 1.
	a := gallery.Diagonal([]float64{3, 5, 9, 2})
	m, _ := NewJacobi(a)
	est, err := Norm2EstPreconditioned(a, m, 200, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-1) > 1e-10 {
		t.Fatalf("‖A M⁻¹‖ = %g, want 1", est)
	}
}

func TestNorm2EstPreconditionedBoundsArnoldiCoefficients(t *testing.T) {
	// The point of the exercise: with right preconditioning the Hessenberg
	// coefficients obey |h| <= ‖A M⁻¹‖. Verify on a real solve.
	a := gallery.Poisson2D(10)
	m, err := NewILU0(a)
	if err != nil {
		t.Fatal(err)
	}
	bound, err := Norm2EstPreconditioned(a, m, 400, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	worst := 0.0
	hook := krylov.CoeffHookFunc(func(ctx krylov.CoeffContext, h float64) (float64, error) {
		if v := math.Abs(h); v > worst {
			worst = v
		}
		return h, nil
	})
	b := onesRHS(a)
	if _, err := krylov.GMRES(a, b, nil, krylov.Options{
		MaxIter: 30, Tol: 1e-10, Precond: m, Hooks: []krylov.CoeffHook{hook},
	}); err != nil {
		t.Fatal(err)
	}
	if worst > bound*1.02 {
		t.Fatalf("coefficient %g exceeds preconditioned bound %g", worst, bound)
	}
	if worst == 0 {
		t.Fatal("no coefficients observed")
	}
}

func TestPreconditionedGMRESMatchesUnpreconditionedSolution(t *testing.T) {
	a := gallery.ConvectionDiffusion2D(8, 6, -3)
	b := onesRHS(a)
	m, err := NewILU0(a)
	if err != nil {
		t.Fatal(err)
	}
	pre, err := krylov.GMRES(a, b, nil, krylov.Options{MaxIter: 64, Tol: 1e-10, Precond: m})
	if err != nil {
		t.Fatal(err)
	}
	if !pre.Converged {
		t.Fatal("not converged")
	}
	for i, v := range pre.X {
		if math.Abs(v-1) > 1e-7 {
			t.Fatalf("x[%d] = %g", i, v)
		}
	}
}
