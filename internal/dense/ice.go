package dense

import (
	"fmt"
	"math"
)

// ICE is Bischof-style incremental condition estimation for a triangular
// matrix built one column at a time: it maintains approximate extreme left
// singular pairs and updates them in O(k) per appended column, so a solver
// can watch cond(R) grow at every iteration for the cost the paper
// requires ("algorithms for updating a rank-revealing decomposition of an
// m×m matrix in O(m²) time", Section VI-C — O(m) per column ⇒ O(m²)
// total).
//
// The estimates are one-sided: SigmaMaxEst never exceeds the true σmax and
// SigmaMinEst never falls below the true σmin... in exact arithmetic the
// construction guarantees σ̂max ≤ σmax and σ̂min ≥ σmin, so CondEst is a
// *lower bound* on the true condition number — exactly the right direction
// for a rank-deficiency alarm (no false positives).
type ICE struct {
	k          int
	xmin, xmax []float64
	smin, smax float64
}

// NewICE returns an empty estimator.
func NewICE() *ICE { return &ICE{} }

// K returns the number of columns absorbed.
func (e *ICE) K() int { return e.k }

// Append absorbs the next column of the triangular matrix: col holds the
// entries above the diagonal (length K()), diag the new diagonal entry.
func (e *ICE) Append(col []float64, diag float64) {
	if len(col) != e.k {
		panic(fmt.Sprintf("dense.ICE: column has %d entries above diagonal, want %d", len(col), e.k))
	}
	if e.k == 0 {
		e.xmin = []float64{1}
		e.xmax = []float64{1}
		e.smin = math.Abs(diag)
		e.smax = math.Abs(diag)
		e.k = 1
		return
	}
	e.smin, e.xmin = e.update(e.smin, e.xmin, col, diag, false)
	e.smax, e.xmax = e.update(e.smax, e.xmax, col, diag, true)
	e.k++
}

// update extends one extreme-singular-pair estimate. The extended left
// vector is x' = (s·x, c) with s²+c² = 1; ‖x'ᵀ R'‖² is the quadratic form
// of the 2×2 matrix M = [[σ̂²+α², αγ], [αγ, γ²]] with α = xᵀ·col and
// γ = diag. Choosing the extreme eigenpair of M extremizes the estimate.
func (e *ICE) update(sigma float64, x []float64, col []float64, diag float64, wantMax bool) (float64, []float64) {
	var alpha float64
	for i, v := range col {
		alpha += x[i] * v
	}
	a := sigma*sigma + alpha*alpha
	b := alpha * diag
	c := diag * diag
	lambda, s, co := eig2x2(a, b, c, wantMax)
	nx := make([]float64, len(x)+1)
	for i, v := range x {
		nx[i] = s * v
	}
	nx[len(x)] = co
	return math.Sqrt(math.Max(lambda, 0)), nx
}

// eig2x2 returns the requested extreme eigenvalue of [[a,b],[b,c]] and the
// corresponding unit eigenvector (s, co).
func eig2x2(a, b, c float64, wantMax bool) (lambda, s, co float64) {
	half := (a + c) / 2
	d := math.Hypot((a-c)/2, b)
	if wantMax {
		lambda = half + d
	} else {
		lambda = half - d
	}
	// Eigenvector: (b, λ−a) unless degenerate, then (λ−c, b).
	v0, v1 := b, lambda-a
	if math.Abs(v0)+math.Abs(v1) < 1e-300 {
		v0, v1 = lambda-c, b
	}
	n := math.Hypot(v0, v1)
	if n == 0 {
		// Perfectly degenerate (e.g. first column, or b == 0 with a == c):
		// keep the old direction, excluding/including the new coordinate
		// as the eigenvalue dictates.
		if (wantMax && c >= a) || (!wantMax && c <= a) {
			return lambda, 0, 1
		}
		return lambda, 1, 0
	}
	return lambda, v0 / n, v1 / n
}

// SigmaMinEst returns the current σmin estimate (an upper bound on the
// true σmin).
func (e *ICE) SigmaMinEst() float64 { return e.smin }

// SigmaMaxEst returns the current σmax estimate (a lower bound on the true
// σmax).
func (e *ICE) SigmaMaxEst() float64 { return e.smax }

// CondEst returns σ̂max/σ̂min, a lower bound on the true 2-norm condition
// number (+Inf if the σmin estimate has reached zero).
func (e *ICE) CondEst() float64 {
	if e.k == 0 {
		return 1
	}
	if e.smin == 0 {
		return math.Inf(1)
	}
	return e.smax / e.smin
}
