package dense

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sdcgmres/internal/vec"
)

// --- Givens ---

func TestMakeGivensAnnihilates(t *testing.T) {
	cases := [][2]float64{{3, 4}, {0, 5}, {5, 0}, {0, 0}, {-2, 7}, {1e-200, 1e-200}, {1e200, -1e200}}
	for _, c := range cases {
		g, r := MakeGivens(c[0], c[1])
		ra, rb := g.Apply(c[0], c[1])
		if math.Abs(rb) > 1e-12*math.Max(1, math.Abs(r)) {
			t.Fatalf("MakeGivens(%g,%g): b not annihilated: %g", c[0], c[1], rb)
		}
		if math.Abs(ra-r) > 1e-12*math.Max(1, math.Abs(r)) {
			t.Fatalf("MakeGivens(%g,%g): r mismatch %g vs %g", c[0], c[1], ra, r)
		}
	}
}

func TestGivensPreservesNormProperty(t *testing.T) {
	f := func(a, b, x, y float64) bool {
		for _, v := range []*float64{&a, &b, &x, &y} {
			if math.IsNaN(*v) || math.IsInf(*v, 0) || math.Abs(*v) > 1e100 {
				*v = 1
			}
		}
		g, _ := MakeGivens(a, b)
		rx, ry := g.Apply(x, y)
		before := math.Hypot(x, y)
		after := math.Hypot(rx, ry)
		return math.Abs(before-after) <= 1e-10*(1+before)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestGivensInverse(t *testing.T) {
	g, _ := MakeGivens(3, -4)
	x, y := 1.5, -2.5
	rx, ry := g.Apply(x, y)
	bx, by := g.ApplyInverse(rx, ry)
	if math.Abs(bx-x) > 1e-14 || math.Abs(by-y) > 1e-14 {
		t.Fatalf("ApplyInverse not inverse: (%g,%g)", bx, by)
	}
}

func TestGivensApplyRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	g, r := MakeGivens(m.At(0, 0), m.At(1, 0))
	g.ApplyRows(m, 0, 1, 0)
	if math.Abs(m.At(1, 0)) > 1e-14 {
		t.Fatalf("ApplyRows did not annihilate: %g", m.At(1, 0))
	}
	if math.Abs(m.At(0, 0)-r) > 1e-14 {
		t.Fatalf("ApplyRows r mismatch: %g vs %g", m.At(0, 0), r)
	}
}

// --- Triangular solves ---

func TestSolveUpperTriangular(t *testing.T) {
	r := FromRows([][]float64{{2, 1, 0}, {0, 3, 1}, {0, 0, 4}})
	y := []float64{1, 2, 3}
	z := make([]float64, 3)
	r.MatVec(z, y)
	got := SolveUpperTriangular(r, z)
	for i := range y {
		if math.Abs(got[i]-y[i]) > 1e-13 {
			t.Fatalf("SolveUpperTriangular = %v", got)
		}
	}
}

func TestSolveUpperTriangularSingularGivesNonFinite(t *testing.T) {
	r := FromRows([][]float64{{1, 1}, {0, 0}})
	y := SolveUpperTriangular(r, []float64{1, 1})
	if vec.AllFinite(y) {
		t.Fatalf("singular solve returned finite %v", y)
	}
}

func TestSolveLowerTriangular(t *testing.T) {
	l := FromRows([][]float64{{2, 0}, {1, 3}})
	y := []float64{1, -1}
	z := make([]float64, 2)
	l.MatVec(z, y)
	got := SolveLowerTriangular(l, z)
	for i := range y {
		if math.Abs(got[i]-y[i]) > 1e-13 {
			t.Fatalf("SolveLowerTriangular = %v", got)
		}
	}
}

func TestTriangularConditionEst(t *testing.T) {
	r := FromRows([][]float64{{4, 1}, {0, 2}})
	if got := TriangularConditionEst(r, 2); got != 2 {
		t.Fatalf("cond est = %g", got)
	}
	r.Set(1, 1, 0)
	if !math.IsInf(TriangularConditionEst(r, 2), 1) {
		t.Fatal("zero pivot should give +Inf")
	}
	if TriangularConditionEst(r, 0) != 1 {
		t.Fatal("empty block should give 1")
	}
}

// --- QR ---

func TestQRReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, dims := range [][2]int{{5, 5}, {8, 3}, {10, 7}} {
		m, n := dims[0], dims[1]
		a := randomMatrix(rng, m, n)
		f := ComputeQR(a)
		r := f.R()
		// Rebuild A column by column: A e_j = Q (R e_j extended with zeros).
		for j := 0; j < n; j++ {
			w := make([]float64, m)
			for i := 0; i <= j; i++ {
				w[i] = r.At(i, j)
			}
			f.QVec(w)
			for i := 0; i < m; i++ {
				if math.Abs(w[i]-a.At(i, j)) > 1e-12 {
					t.Fatalf("QR reconstruction (%dx%d) col %d row %d: %g vs %g", m, n, j, i, w[i], a.At(i, j))
				}
			}
		}
	}
}

func TestQROrthogonality(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	a := randomMatrix(rng, 7, 7)
	f := ComputeQR(a)
	x := make([]float64, 7)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	w := vec.Clone(x)
	f.QTVec(w)
	f.QVec(w)
	for i := range x {
		if math.Abs(w[i]-x[i]) > 1e-12 {
			t.Fatalf("Q Qᵀ x != x at %d: %g vs %g", i, w[i], x[i])
		}
	}
	if math.Abs(vec.Norm2(w)-vec.Norm2(x)) > 1e-12 {
		t.Fatal("Q not isometric")
	}
}

func TestQRSolveLSQConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	a := randomMatrix(rng, 9, 4)
	truth := []float64{1, -2, 0.5, 3}
	b := make([]float64, 9)
	a.MatVec(b, truth)
	got := f64s(ComputeQR(a).SolveLSQ(b))
	for i := range truth {
		if math.Abs(got[i]-truth[i]) > 1e-10 {
			t.Fatalf("QR LSQ = %v", got)
		}
	}
}

func f64s(x []float64) []float64 { return x }

// --- SVD ---

func TestSVDDiagonal(t *testing.T) {
	a := FromRows([][]float64{{3, 0}, {0, -4}})
	s := ComputeSVD(a)
	if math.Abs(s.S[0]-4) > 1e-13 || math.Abs(s.S[1]-3) > 1e-13 {
		t.Fatalf("singular values = %v", s.S)
	}
}

func TestSVDReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, dims := range [][2]int{{6, 6}, {9, 4}, {4, 9}, {1, 1}, {5, 1}} {
		a := randomMatrix(rng, dims[0], dims[1])
		s := ComputeSVD(a)
		// Rebuild U diag(S) Vᵀ.
		us := s.U.Clone()
		for j := 0; j < us.Cols; j++ {
			for i := 0; i < us.Rows; i++ {
				us.Set(i, j, us.At(i, j)*s.S[j])
			}
		}
		rec := us.Mul(s.V.Transpose())
		if !rec.Equalish(a, 1e-10) {
			t.Fatalf("SVD reconstruction failed for %dx%d", dims[0], dims[1])
		}
		// Sorted descending.
		for i := 1; i < len(s.S); i++ {
			if s.S[i] > s.S[i-1]+1e-14 {
				t.Fatalf("singular values not sorted: %v", s.S)
			}
		}
	}
}

func TestSVDOrthogonality(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	a := randomMatrix(rng, 8, 5)
	s := ComputeSVD(a)
	utu := s.U.Transpose().Mul(s.U)
	if !utu.Equalish(Identity(5), 1e-10) {
		t.Fatal("Uᵀ U != I")
	}
	vtv := s.V.Transpose().Mul(s.V)
	if !vtv.Equalish(Identity(5), 1e-10) {
		t.Fatal("Vᵀ V != I")
	}
}

func TestSVDRankDeficient(t *testing.T) {
	// Rank-1 matrix from an outer product.
	a := NewMatrix(5, 3)
	u := []float64{1, 2, 3, 4, 5}
	v := []float64{1, -1, 2}
	for i := 0; i < 5; i++ {
		for j := 0; j < 3; j++ {
			a.Set(i, j, u[i]*v[j])
		}
	}
	s := ComputeSVD(a)
	if s.Rank(1e-10) != 1 {
		t.Fatalf("rank = %d, S = %v", s.Rank(1e-10), s.S)
	}
	if !math.IsInf(s.Cond2(), 1) && s.Cond2() < 1e12 {
		t.Fatalf("expected huge condition number, got %g", s.Cond2())
	}
}

func TestSVDSingularValuesMatchQRDiagonalForTriangular(t *testing.T) {
	// For a triangular matrix with orthogonal-ish structure the product of
	// singular values must equal |det| = |prod of diagonal entries|.
	r := FromRows([][]float64{{2, 1, 3}, {0, 0.5, -1}, {0, 0, 4}})
	s := ComputeSVD(r)
	prod := 1.0
	for _, sv := range s.S {
		prod *= sv
	}
	if math.Abs(prod-4.0) > 1e-10 {
		t.Fatalf("prod of singular values %g != |det| 4", prod)
	}
}

func TestSolveMinNormExactSystem(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	a := randomMatrix(rng, 6, 6)
	truth := []float64{1, 2, 3, 4, 5, 6}
	b := make([]float64, 6)
	a.MatVec(b, truth)
	got := SolveSVD(a, b, 1e-14)
	for i := range truth {
		if math.Abs(got[i]-truth[i]) > 1e-9 {
			t.Fatalf("SolveSVD = %v", got)
		}
	}
}

func TestSolveMinNormBoundedOnSingularSystem(t *testing.T) {
	// Singular system: plain triangular solve would blow up; the truncated
	// SVD solve must stay bounded — that is the paper's whole point about
	// regularizing the projected problem.
	a := FromRows([][]float64{{1, 1}, {1, 1}})
	b := []float64{1, 1}
	y := SolveSVD(a, b, 1e-12)
	if !vec.AllFinite(y) {
		t.Fatalf("truncated solve not finite: %v", y)
	}
	if vec.Norm2(y) > 10 {
		t.Fatalf("truncated solve not bounded: %v", y)
	}
	// And it should still (least-squares) fit: A y ≈ b.
	r := make([]float64, 2)
	a.MatVec(r, y)
	if math.Abs(r[0]-1) > 1e-10 || math.Abs(r[1]-1) > 1e-10 {
		t.Fatalf("residual too large: %v", r)
	}
}

func TestSVDPropertyNormEqualsLargestSingularValue(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomMatrix(rng, 5, 5)
		s := ComputeSVD(a)
		// ‖A x‖ <= σmax ‖x‖ for random probes.
		x := make([]float64, 5)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		ax := make([]float64, 5)
		a.MatVec(ax, x)
		return vec.Norm2(ax) <= s.S[0]*vec.Norm2(x)*(1+1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// --- HessLSQ ---

// buildHess produces a random (k+1)-by-k Hessenberg column sequence and
// feeds it through HessLSQ, returning the solver and the raw columns.
func buildHess(rng *rand.Rand, k int, beta float64) (*HessLSQ, [][]float64) {
	l := NewHessLSQ(k, beta)
	cols := make([][]float64, k)
	for j := 0; j < k; j++ {
		col := make([]float64, j+2)
		for i := range col {
			col[i] = rng.NormFloat64()
		}
		// Keep the subdiagonal comfortably nonzero so the triangular factor
		// stays well conditioned in these tests.
		col[j+1] = 1 + math.Abs(col[j+1])
		cols[j] = col
		l.AppendColumn(col)
	}
	return l, cols
}

func TestHessLSQMatchesDirectLeastSquares(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, k := range []int{1, 2, 5, 12} {
		beta := 2.5
		l, _ := buildHess(rng, k, beta)
		h := l.HColumnwise()
		// Direct dense solution via Householder QR on the (k+1)-by-k H.
		rhs := make([]float64, k+1)
		rhs[0] = beta
		want := ComputeQR(h).SolveLSQ(rhs)
		got := l.SolveTriangular()
		for i := 0; i < k; i++ {
			if math.Abs(got[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
				t.Fatalf("k=%d: incremental %v vs direct %v", k, got, want)
			}
		}
		// Residual norms must agree too.
		res := make([]float64, k+1)
		h.MatVec(res, want)
		res[0] -= beta
		for i := 1; i < k+1; i++ {
			// res = H y - beta e1 (negated beta already applied to entry 0)
			_ = i
		}
		direct := vec.Norm2(res)
		if math.Abs(l.ResidualNorm()-direct) > 1e-9*(1+direct) {
			t.Fatalf("k=%d: residual %g vs direct %g", k, l.ResidualNorm(), direct)
		}
	}
}

func TestHessLSQResidualMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	l := NewHessLSQ(10, 1)
	prev := math.Inf(1)
	for j := 0; j < 10; j++ {
		col := make([]float64, j+2)
		for i := range col {
			col[i] = rng.NormFloat64()
		}
		r := l.AppendColumn(col)
		if r > prev+1e-14 {
			t.Fatalf("projected residual increased: %g -> %g at j=%d", prev, r, j)
		}
		prev = r
	}
}

func TestHessLSQRankRevealingAgreesWhenWellConditioned(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	l, _ := buildHess(rng, 6, 1.7)
	tri := l.SolveTriangular()
	rr := l.SolveRankRevealing(1e-14)
	for i := range tri {
		if math.Abs(tri[i]-rr[i]) > 1e-8*(1+math.Abs(tri[i])) {
			t.Fatalf("policies disagree on well-conditioned system: %v vs %v", tri, rr)
		}
	}
}

func TestHessLSQRankRevealingBoundedOnSingular(t *testing.T) {
	// Construct a Hessenberg sequence whose triangular factor becomes
	// numerically singular (second column parallel to first).
	l := NewHessLSQ(2, 1)
	l.AppendColumn([]float64{1, 1})
	l.AppendColumn([]float64{1, 1, 0})
	tri := l.SolveTriangular()
	if vec.AllFinite(tri) && vec.Norm2(tri) < 1e12 {
		t.Fatalf("expected blow-up from plain triangular solve, got %v (cond %g)", tri, l.RCondEst())
	}
	rr := l.SolveRankRevealing(1e-10)
	if !vec.AllFinite(rr) || vec.Norm2(rr) > 1e6 {
		t.Fatalf("rank-revealing solve not bounded: %v", rr)
	}
}

func TestHessLSQCondEstimates(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	l, _ := buildHess(rng, 5, 1)
	est := l.RCondEst()
	svd := l.RCondSVD()
	if est < 1 || svd < 1 {
		t.Fatalf("condition numbers below 1: est %g, svd %g", est, svd)
	}
	// The diagonal-ratio estimate must not exceed the true condition number
	// by definition (it is a lower bound).
	if est > svd*(1+1e-10) {
		t.Fatalf("diag estimate %g exceeds true cond %g", est, svd)
	}
}

func TestHessLSQLastSubdiag(t *testing.T) {
	l := NewHessLSQ(3, 1)
	if !math.IsNaN(l.LastSubdiag()) {
		t.Fatal("LastSubdiag before any column should be NaN")
	}
	l.AppendColumn([]float64{2, 0.25})
	if l.LastSubdiag() != 0.25 {
		t.Fatalf("LastSubdiag = %g", l.LastSubdiag())
	}
}

func TestHessLSQAppendPastMaxPanics(t *testing.T) {
	l := NewHessLSQ(1, 1)
	l.AppendColumn([]float64{1, 1})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic past maxIter")
		}
	}()
	l.AppendColumn([]float64{1, 1, 1})
}

func TestHessLSQWrongColumnLengthPanics(t *testing.T) {
	l := NewHessLSQ(3, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for wrong column length")
		}
	}()
	l.AppendColumn([]float64{1, 1, 1})
}

func BenchmarkJacobiSVD(b *testing.B) {
	for _, n := range []int{10, 25, 50} {
		b.Run(sizeTag(n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(55))
			a := randomMatrix(rng, n, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = ComputeSVD(a)
			}
		})
	}
}

func BenchmarkHessLSQAppend(b *testing.B) {
	rng := rand.New(rand.NewSource(56))
	cols := make([][]float64, 50)
	for j := range cols {
		cols[j] = make([]float64, j+2)
		for i := range cols[j] {
			cols[j][i] = rng.NormFloat64()
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := NewHessLSQ(50, 1)
		for _, c := range cols {
			l.AppendColumn(c)
		}
	}
}

func sizeTag(n int) string {
	switch {
	case n >= 50:
		return "k50"
	case n >= 25:
		return "k25"
	default:
		return "k10"
	}
}
