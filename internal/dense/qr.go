package dense

import (
	"fmt"
	"math"
)

// QR holds a Householder QR factorization A = Q R of an m-by-n matrix with
// m >= n; Q is m-by-m orthogonal (stored implicitly as reflectors) and R is
// upper triangular. It is used by tests as an independent reference and by
// the gallery's condition-number instrumentation.
type QR struct {
	m, n int
	// qr stores R in the upper triangle and the Householder vectors below
	// the diagonal (LAPACK dgeqrf layout, with the implicit leading 1).
	qr  *Matrix
	tau []float64
}

// ComputeQR factors a (m >= n) with Householder reflections.
func ComputeQR(a *Matrix) *QR {
	m, n := a.Rows, a.Cols
	if m < n {
		panic(fmt.Sprintf("dense.ComputeQR: need m >= n, got %dx%d", m, n))
	}
	f := &QR{m: m, n: n, qr: a.Clone(), tau: make([]float64, n)}
	for k := 0; k < n; k++ {
		// Build the reflector for column k, rows k..m-1.
		var normx float64
		for i := k; i < m; i++ {
			normx = math.Hypot(normx, f.qr.At(i, k))
		}
		if normx == 0 {
			f.tau[k] = 0
			continue
		}
		alpha := f.qr.At(k, k)
		beta := -math.Copysign(normx, alpha)
		f.tau[k] = (beta - alpha) / beta
		scale := 1 / (alpha - beta)
		for i := k + 1; i < m; i++ {
			f.qr.Set(i, k, f.qr.At(i, k)*scale)
		}
		f.qr.Set(k, k, beta)
		// Apply the reflector to the trailing columns.
		for j := k + 1; j < n; j++ {
			s := f.qr.At(k, j)
			for i := k + 1; i < m; i++ {
				s += f.qr.At(i, k) * f.qr.At(i, j)
			}
			s *= f.tau[k]
			f.qr.Set(k, j, f.qr.At(k, j)-s)
			for i := k + 1; i < m; i++ {
				f.qr.Set(i, j, f.qr.At(i, j)-s*f.qr.At(i, k))
			}
		}
	}
	return f
}

// R returns the n-by-n upper-triangular factor.
func (f *QR) R() *Matrix {
	r := NewMatrix(f.n, f.n)
	for i := 0; i < f.n; i++ {
		for j := i; j < f.n; j++ {
			r.Set(i, j, f.qr.At(i, j))
		}
	}
	return r
}

// QTVec overwrites x (length m) with Qᵀ x.
func (f *QR) QTVec(x []float64) {
	if len(x) != f.m {
		panic(fmt.Sprintf("dense.QTVec: x has length %d, want %d", len(x), f.m))
	}
	for k := 0; k < f.n; k++ {
		if f.tau[k] == 0 {
			continue
		}
		s := x[k]
		for i := k + 1; i < f.m; i++ {
			s += f.qr.At(i, k) * x[i]
		}
		s *= f.tau[k]
		x[k] -= s
		for i := k + 1; i < f.m; i++ {
			x[i] -= s * f.qr.At(i, k)
		}
	}
}

// QVec overwrites x (length m) with Q x.
func (f *QR) QVec(x []float64) {
	if len(x) != f.m {
		panic(fmt.Sprintf("dense.QVec: x has length %d, want %d", len(x), f.m))
	}
	for k := f.n - 1; k >= 0; k-- {
		if f.tau[k] == 0 {
			continue
		}
		s := x[k]
		for i := k + 1; i < f.m; i++ {
			s += f.qr.At(i, k) * x[i]
		}
		s *= f.tau[k]
		x[k] -= s
		for i := k + 1; i < f.m; i++ {
			x[i] -= s * f.qr.At(i, k)
		}
	}
}

// SolveLSQ returns the least-squares solution of min‖A y − b‖₂ via
// y = R⁻¹ (Qᵀ b)(1:n). It fails with Inf/NaN coefficients when R is
// singular, just like the triangular GMRES update it mirrors.
func (f *QR) SolveLSQ(b []float64) []float64 {
	if len(b) != f.m {
		panic(fmt.Sprintf("dense.SolveLSQ: b has length %d, want %d", len(b), f.m))
	}
	w := make([]float64, f.m)
	copy(w, b)
	f.QTVec(w)
	return SolveUpperTriangular(f.qr, w[:f.n])
}
