package dense

import (
	"fmt"
	"math"
)

// SolveUpperTriangular solves R y = z by back-substitution, where R is the
// leading n-by-n upper-triangular block of r and z has length n. This is
// "Approach 1" of Section VI-D: the classic Saad & Schultz update solve. It
// does not guard against a singular or nearly singular R — an exact zero
// pivot yields ±Inf or NaN coefficients, exactly the natural IEEE-754 error
// signalling the paper discusses.
func SolveUpperTriangular(r *Matrix, z []float64) []float64 {
	n := len(z)
	if r.Rows < n || r.Cols < n {
		panic(fmt.Sprintf("dense.SolveUpperTriangular: R is %dx%d, need at least %dx%d", r.Rows, r.Cols, n, n))
	}
	y := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := z[i]
		for j := i + 1; j < n; j++ {
			s -= r.At(i, j) * y[j]
		}
		y[i] = s / r.At(i, i)
	}
	return y
}

// SolveLowerTriangular solves L y = z by forward substitution on the leading
// n-by-n lower-triangular block of l.
func SolveLowerTriangular(l *Matrix, z []float64) []float64 {
	n := len(z)
	if l.Rows < n || l.Cols < n {
		panic(fmt.Sprintf("dense.SolveLowerTriangular: L is %dx%d, need at least %dx%d", l.Rows, l.Cols, n, n))
	}
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := z[i]
		for j := 0; j < i; j++ {
			s -= l.At(i, j) * y[j]
		}
		y[i] = s / l.At(i, i)
	}
	return y
}

// TriangularConditionEst returns a cheap lower bound on the 2-norm condition
// number of the leading n-by-n upper-triangular block: the ratio of the
// largest to the smallest diagonal magnitude. For triangular matrices the
// diagonal bounds the singular values one-sidedly (σmin <= min|r_ii|,
// σmax >= max|r_ii|), so this ratio is a valid and extremely cheap
// rank-deficiency alarm; the SVD-based policies provide the exact answer.
func TriangularConditionEst(r *Matrix, n int) float64 {
	if n == 0 {
		return 1
	}
	lo := math.Inf(1)
	hi := 0.0
	for i := 0; i < n; i++ {
		d := math.Abs(r.At(i, i))
		if d < lo {
			lo = d
		}
		if d > hi {
			hi = d
		}
	}
	if lo == 0 {
		return math.Inf(1)
	}
	return hi / lo
}
