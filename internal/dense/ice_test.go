package dense

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// feedTriangular pushes the columns of an upper-triangular matrix into an
// ICE estimator.
func feedTriangular(r *Matrix) *ICE {
	e := NewICE()
	for j := 0; j < r.Cols; j++ {
		above := make([]float64, j)
		for i := 0; i < j; i++ {
			above[i] = r.At(i, j)
		}
		e.Append(above, r.At(j, j))
	}
	return e
}

func TestICEDiagonalExact(t *testing.T) {
	r := FromRows([][]float64{{4, 0, 0}, {0, 0.5, 0}, {0, 0, 2}})
	e := feedTriangular(r)
	if math.Abs(e.SigmaMaxEst()-4) > 1e-12 {
		t.Fatalf("σmax est = %g", e.SigmaMaxEst())
	}
	if math.Abs(e.SigmaMinEst()-0.5) > 1e-12 {
		t.Fatalf("σmin est = %g", e.SigmaMinEst())
	}
	if math.Abs(e.CondEst()-8) > 1e-10 {
		t.Fatalf("cond est = %g", e.CondEst())
	}
}

func TestICEEmptyAndSingleColumn(t *testing.T) {
	e := NewICE()
	if e.CondEst() != 1 || e.K() != 0 {
		t.Fatal("empty estimator state")
	}
	e.Append(nil, -3)
	if e.SigmaMinEst() != 3 || e.SigmaMaxEst() != 3 || e.CondEst() != 1 {
		t.Fatalf("single column: %g %g", e.SigmaMinEst(), e.SigmaMaxEst())
	}
}

func TestICEZeroPivotGivesInfiniteCond(t *testing.T) {
	e := NewICE()
	e.Append(nil, 2)
	e.Append([]float64{1}, 0)
	if !math.IsInf(e.CondEst(), 1) {
		t.Fatalf("cond est = %g, want +Inf", e.CondEst())
	}
}

func TestICEWrongColumnLengthPanics(t *testing.T) {
	e := NewICE()
	e.Append(nil, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.Append([]float64{1, 2}, 1)
}

// TestICEBoundsAreOneSided is the key property: the estimates must bracket
// inward (σ̂max ≤ σmax, σ̂min ≥ σmin), making CondEst a lower bound with no
// false alarms.
func TestICEBoundsAreOneSided(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(10)
		r := NewMatrix(k, k)
		for i := 0; i < k; i++ {
			for j := i; j < k; j++ {
				r.Set(i, j, rng.NormFloat64())
			}
			// Keep diagonals nonzero but allow wide scales.
			r.Set(i, i, r.At(i, i)+math.Copysign(0.1, r.At(i, i)))
		}
		e := feedTriangular(r)
		s := ComputeSVD(r)
		sigMax, sigMin := s.S[0], s.S[len(s.S)-1]
		tol := 1e-10 * (1 + sigMax)
		return e.SigmaMaxEst() <= sigMax+tol && e.SigmaMinEst() >= sigMin-tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestICEEstimateQualityOnGradedMatrix(t *testing.T) {
	// A graded triangular matrix with condition ~1e8: ICE must flag at
	// least a large fraction of the true condition number (ICE is known to
	// track within a modest factor).
	k := 12
	r := NewMatrix(k, k)
	for i := 0; i < k; i++ {
		r.Set(i, i, math.Pow(10, -float64(i)*8/float64(k-1)))
		for j := i + 1; j < k; j++ {
			r.Set(i, j, 0.1*r.At(i, i))
		}
	}
	e := feedTriangular(r)
	true2 := ComputeSVD(r).Cond2()
	if e.CondEst() > true2*(1+1e-8) {
		t.Fatalf("ICE overestimated: %g > %g", e.CondEst(), true2)
	}
	if e.CondEst() < true2/1e3 {
		t.Fatalf("ICE too weak: %g vs true %g", e.CondEst(), true2)
	}
}

func TestHessLSQICEMatchesSVDTrend(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	l, _ := buildHess(rng, 8, 1)
	ice := l.RCondICE()
	svd := l.RCondSVD()
	if ice > svd*(1+1e-8) {
		t.Fatalf("ICE %g exceeds exact cond %g", ice, svd)
	}
	if ice < 1 {
		t.Fatalf("ICE %g below 1", ice)
	}
}

func TestHessLSQICEDetectsNearSingularColumn(t *testing.T) {
	l := NewHessLSQ(3, 1)
	l.AppendColumn([]float64{1, 1})
	l.AppendColumn([]float64{1, 1, 1e-14})
	if l.RCondICE() < 1e10 {
		t.Fatalf("ICE missed near-singularity: %g", l.RCondICE())
	}
}
