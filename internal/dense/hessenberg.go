package dense

import (
	"fmt"
	"math"
)

// HessLSQ incrementally solves the projected GMRES least-squares problem
//
//	min_y ‖ H(1:k+1, 1:k) y − β e1 ‖₂
//
// using one new Givens rotation per iteration (the Saad & Schultz structured
// QR), which keeps the per-iteration cost O(k) and gives the residual norm of
// the projected problem for free as |g_{k+1}|.
//
// It keeps both the raw upper-Hessenberg matrix H (needed for the
// rank-revealing policies and the trichotomy check of Section VI-C) and the
// rotated triangular factor R with the rotated right-hand side g.
type HessLSQ struct {
	maxIter int
	k       int // columns appended so far

	beta float64
	h    *Matrix   // raw Hessenberg, (maxIter+1) x maxIter
	r    *Matrix   // rotated (triangular) copy
	g    []float64 // rotated rhs, length maxIter+1
	rots []Givens
	ice  *ICE // O(k)-per-column condition monitor of the triangular factor
}

// NewHessLSQ prepares the incremental solver for up to maxIter iterations
// with initial residual norm beta (the rhs is β e1).
func NewHessLSQ(maxIter int, beta float64) *HessLSQ {
	if maxIter <= 0 {
		panic(fmt.Sprintf("dense.NewHessLSQ: maxIter = %d", maxIter))
	}
	l := &HessLSQ{
		maxIter: maxIter,
		beta:    beta,
		h:       NewMatrix(maxIter+1, maxIter),
		r:       NewMatrix(maxIter+1, maxIter),
		g:       make([]float64, maxIter+1),
		rots:    make([]Givens, 0, maxIter),
		ice:     NewICE(),
	}
	l.g[0] = beta
	return l
}

// K returns the number of columns appended so far.
func (l *HessLSQ) K() int { return l.k }

// Beta returns the initial residual norm used as the right-hand side.
func (l *HessLSQ) Beta() float64 { return l.beta }

// AppendColumn installs column k (0-based) of the Hessenberg matrix — the
// coefficients h[0..k+1] = H(1:k+2, k+1) produced by the Arnoldi step — and
// returns the updated projected residual norm |g_{k+2}|.
func (l *HessLSQ) AppendColumn(h []float64) float64 {
	if l.k >= l.maxIter {
		panic("dense.HessLSQ: AppendColumn past maxIter")
	}
	if len(h) != l.k+2 {
		panic(fmt.Sprintf("dense.HessLSQ: column %d needs %d entries, got %d", l.k, l.k+2, len(h)))
	}
	j := l.k
	for i := 0; i <= j+1; i++ {
		l.h.Set(i, j, h[i])
		l.r.Set(i, j, h[i])
	}
	// Apply the accumulated rotations to the new column.
	for i, rot := range l.rots {
		a, b := l.r.At(i, j), l.r.At(i+1, j)
		ra, rb := rot.Apply(a, b)
		l.r.Set(i, j, ra)
		l.r.Set(i+1, j, rb)
	}
	// New rotation to annihilate the subdiagonal entry.
	rot, rr := MakeGivens(l.r.At(j, j), l.r.At(j+1, j))
	l.rots = append(l.rots, rot)
	l.r.Set(j, j, rr)
	l.r.Set(j+1, j, 0)
	// Rotate the right-hand side.
	a, b := rot.Apply(l.g[j], l.g[j+1])
	l.g[j], l.g[j+1] = a, b
	// Feed the incremental condition estimator the new triangular column.
	above := make([]float64, j)
	for i := 0; i < j; i++ {
		above[i] = l.r.At(i, j)
	}
	l.ice.Append(above, rr)
	l.k++
	return math.Abs(l.g[l.k])
}

// ResidualNorm returns the current projected residual norm |g_{k+1}|.
func (l *HessLSQ) ResidualNorm() float64 { return math.Abs(l.g[l.k]) }

// SolveTriangular returns the update coefficients via back-substitution on
// the rotated triangular factor (Section VI-D, Approach 1). A singular R
// produces Inf/NaN coefficients rather than an error, mirroring the paper's
// discussion of IEEE-754's "natural error detection".
func (l *HessLSQ) SolveTriangular() []float64 {
	return SolveUpperTriangular(l.r, l.g[:l.k])
}

// SolveRankRevealing returns the minimum-norm update coefficients via a
// truncated SVD of the rotated triangular factor (Section VI-D, Approach 3).
// relTol is the relative singular-value truncation threshold.
func (l *HessLSQ) SolveRankRevealing(relTol float64) []float64 {
	if l.k == 0 {
		return nil
	}
	r := l.r.Sub(0, l.k, 0, l.k)
	return SolveSVD(r, l.g[:l.k], relTol)
}

// HColumnwise returns a copy of the raw (k+1)-by-k Hessenberg matrix built
// so far.
func (l *HessLSQ) HColumnwise() *Matrix {
	return l.h.Sub(0, l.k+1, 0, l.k)
}

// RCondEst returns the cheap diagonal-ratio condition estimate of the
// current triangular factor. Values near 1/eps flag the rank-deficiency
// failure mode of FGMRES (Section VI-C trichotomy).
func (l *HessLSQ) RCondEst() float64 {
	return TriangularConditionEst(l.r, l.k)
}

// RCondSVD returns the exact 2-norm condition number of the current
// triangular factor via the Jacobi SVD — the rank-revealing decomposition
// the paper recommends keeping updated (Stewart-style ULV would be the
// O(k²) production choice; an SVD of a k-by-k triangle is equally accurate
// and still negligible next to the sparse work for the k used here).
func (l *HessLSQ) RCondSVD() float64 {
	if l.k == 0 {
		return 1
	}
	return ComputeSVD(l.r.Sub(0, l.k, 0, l.k)).Cond2()
}

// RCondICE returns the incremental (Bischof-style) condition estimate of
// the triangular factor — a lower bound on the true condition number,
// updated in O(k) per iteration. It is the cheap per-iteration
// rank-deficiency alarm; RCondSVD is the exact confirmation.
func (l *HessLSQ) RCondICE() float64 { return l.ice.CondEst() }

// LastSubdiag returns H(k+1, k), the subdiagonal entry produced by the most
// recent Arnoldi step — the "happy breakdown" indicator.
func (l *HessLSQ) LastSubdiag() float64 {
	if l.k == 0 {
		return math.NaN()
	}
	return l.h.At(l.k, l.k-1)
}
