package dense

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomMatrix(rng *rand.Rand, r, c int) *Matrix {
	m := NewMatrix(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestNewMatrixZeroed(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("bad shape %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("NewMatrix not zeroed")
		}
	}
}

func TestNewMatrixNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for negative dims")
		}
	}()
	NewMatrix(-1, 2)
}

func TestFromRowsAndAt(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatalf("FromRows wrong: %v", m)
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestIdentity(t *testing.T) {
	m := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if m.At(i, j) != want {
				t.Fatalf("Identity(3)[%d,%d] = %g", i, j, m.At(i, j))
			}
		}
	}
}

func TestSetAddRowCol(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 5)
	m.Add(1, 2, 2)
	if m.At(1, 2) != 7 {
		t.Fatalf("Set/Add = %g", m.At(1, 2))
	}
	row := m.Row(1)
	if row[2] != 7 {
		t.Fatalf("Row = %v", row)
	}
	col := m.Col(2)
	if col[0] != 0 || col[1] != 7 {
		t.Fatalf("Col = %v", col)
	}
}

func TestIndexOutOfRangePanics(t *testing.T) {
	m := NewMatrix(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for out-of-range index")
		}
	}()
	m.At(2, 0)
}

func TestCloneAndSub(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone aliases storage")
	}
	s := m.Sub(1, 3, 0, 2)
	want := FromRows([][]float64{{4, 5}, {7, 8}})
	if !s.Equalish(want, 0) {
		t.Fatalf("Sub = %v", s)
	}
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 || tr.At(2, 1) != 6 || tr.At(0, 1) != 4 {
		t.Fatalf("Transpose wrong: %v", tr)
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := randomMatrix(rng, 5, 3)
	if !m.Transpose().Transpose().Equalish(m, 0) {
		t.Fatal("(Aᵀ)ᵀ != A")
	}
}

func TestMatVec(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	dst := make([]float64, 2)
	m.MatVec(dst, []float64{1, 1})
	if dst[0] != 3 || dst[1] != 7 {
		t.Fatalf("MatVec = %v", dst)
	}
}

func TestMatTVecAgreesWithTransposeMatVec(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := randomMatrix(rng, 6, 4)
	x := make([]float64, 6)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	got := make([]float64, 4)
	m.MatTVec(got, x)
	want := make([]float64, 4)
	m.Transpose().MatVec(want, x)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-13 {
			t.Fatalf("MatTVec mismatch at %d: %g vs %g", i, got[i], want[i])
		}
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := randomMatrix(rng, 4, 4)
	if !m.Mul(Identity(4)).Equalish(m, 1e-15) {
		t.Fatal("A*I != A")
	}
	if !Identity(4).Mul(m).Equalish(m, 1e-15) {
		t.Fatal("I*A != A")
	}
}

func TestMulAssociativityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomMatrix(r, 3, 4)
		b := randomMatrix(r, 4, 2)
		c := randomMatrix(r, 2, 5)
		return a.Mul(b).Mul(c).Equalish(a.Mul(b.Mul(c)), 1e-10)
	}
	_ = rng
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestScaleAndNorms(t *testing.T) {
	m := FromRows([][]float64{{3, 0}, {0, 4}})
	if m.FrobeniusNorm() != 5 {
		t.Fatalf("FrobeniusNorm = %g", m.FrobeniusNorm())
	}
	if m.MaxAbs() != 4 {
		t.Fatalf("MaxAbs = %g", m.MaxAbs())
	}
	m.Scale(2)
	if m.At(1, 1) != 8 {
		t.Fatal("Scale failed")
	}
}

func TestHessenbergAndTridiagonalPredicates(t *testing.T) {
	h := FromRows([][]float64{
		{1, 2, 3, 4},
		{5, 6, 7, 8},
		{0, 9, 1, 2},
		{0, 0, 3, 4},
	})
	if !h.IsUpperHessenberg(0) {
		t.Fatal("expected upper Hessenberg")
	}
	if h.IsTridiagonal(0) {
		t.Fatal("not tridiagonal")
	}
	tri := FromRows([][]float64{
		{1, 2, 0},
		{3, 4, 5},
		{0, 6, 7},
	})
	if !tri.IsTridiagonal(0) || !tri.IsUpperHessenberg(0) {
		t.Fatal("expected tridiagonal (hence Hessenberg)")
	}
	h.Set(3, 0, 1e-3)
	if h.IsUpperHessenberg(1e-6) {
		t.Fatal("perturbed matrix should fail Hessenberg check")
	}
	if !h.IsUpperHessenberg(1e-2) {
		t.Fatal("tolerance should absorb small entry")
	}
}

func TestEqualishShapes(t *testing.T) {
	if NewMatrix(2, 2).Equalish(NewMatrix(2, 3), 1) {
		t.Fatal("shape mismatch should not be Equalish")
	}
}

func TestStringDoesNotPanic(t *testing.T) {
	_ = FromRows([][]float64{{1, 2}, {3, 4}}).String()
}
