// Package dense implements the small dense linear-algebra kernels that the
// Krylov solvers need: Givens rotations, incremental QR of upper-Hessenberg
// matrices, Householder QR, a one-sided Jacobi SVD, triangular solves, and
// the rank-revealing (truncated-SVD) least-squares solve from Section VI-D of
// the paper.
//
// The matrices handled here are tiny compared with the sparse operators (a
// restart length squared, typically 25x25 to 200x200), so the implementations
// favour robustness and clarity over blocking and cache tricks.
package dense

import (
	"fmt"
	"math"

	"sdcgmres/internal/vec"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	// Data holds the elements in row-major order: element (i,j) is
	// Data[i*Cols+j].
	Data []float64
}

// NewMatrix returns a zero r-by-c matrix.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("dense.NewMatrix: negative dimension %dx%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) *Matrix {
	r := len(rows)
	if r == 0 {
		return NewMatrix(0, 0)
	}
	c := len(rows[0])
	m := NewMatrix(r, c)
	for i, row := range rows {
		if len(row) != c {
			panic(fmt.Sprintf("dense.FromRows: row %d has length %d, want %d", i, len(row), c))
		}
		copy(m.Data[i*c:(i+1)*c], row)
	}
	return m
}

// Identity returns the n-by-n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.Data[i*m.Cols+j]
}

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.Data[i*m.Cols+j] = v
}

// Add increments element (i, j) by v.
func (m *Matrix) Add(i, j int, v float64) {
	m.check(i, j)
	m.Data[i*m.Cols+j] += v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("dense: index (%d,%d) out of %dx%d", i, j, m.Rows, m.Cols))
	}
}

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float64 {
	if i < 0 || i >= m.Rows {
		panic(fmt.Sprintf("dense.Row: index %d out of %d rows", i, m.Rows))
	}
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	if j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("dense.Col: index %d out of %d cols", j, m.Cols))
	}
	c := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		c[i] = m.Data[i*m.Cols+j]
	}
	return c
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Sub returns a copy of the submatrix rows [r0,r1) x cols [c0,c1).
func (m *Matrix) Sub(r0, r1, c0, c1 int) *Matrix {
	if r0 < 0 || r1 > m.Rows || c0 < 0 || c1 > m.Cols || r0 > r1 || c0 > c1 {
		panic(fmt.Sprintf("dense.Sub: bad range [%d,%d)x[%d,%d) of %dx%d", r0, r1, c0, c1, m.Rows, m.Cols))
	}
	out := NewMatrix(r1-r0, c1-c0)
	for i := r0; i < r1; i++ {
		copy(out.Row(i-r0), m.Row(i)[c0:c1])
	}
	return out
}

// Transpose returns a new transposed matrix.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Data[j*out.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return out
}

// MatVec computes dst = M x.
func (m *Matrix) MatVec(dst, x []float64) {
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic(fmt.Sprintf("dense.MatVec: dims %dx%d with x[%d], dst[%d]", m.Rows, m.Cols, len(x), len(dst)))
	}
	for i := 0; i < m.Rows; i++ {
		dst[i] = vec.Dot(m.Row(i), x)
	}
}

// MatTVec computes dst = Mᵀ x.
func (m *Matrix) MatTVec(dst, x []float64) {
	if len(x) != m.Rows || len(dst) != m.Cols {
		panic(fmt.Sprintf("dense.MatTVec: dims %dx%d with x[%d], dst[%d]", m.Rows, m.Cols, len(x), len(dst)))
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < m.Rows; i++ {
		vec.Axpy(x[i], m.Row(i), dst)
	}
}

// Mul returns M*B.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("dense.Mul: %dx%d * %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		mi := m.Row(i)
		oi := out.Row(i)
		for k := 0; k < m.Cols; k++ {
			a := mi[k]
			if a == 0 {
				continue
			}
			vec.Axpy(a, b.Row(k), oi)
		}
	}
	return out
}

// Scale multiplies every element by alpha, in place.
func (m *Matrix) Scale(alpha float64) {
	vec.Scale(alpha, m.Data)
}

// FrobeniusNorm returns sqrt(sum of squared elements), with the same
// overflow-safe scaling as vec.Norm2.
func (m *Matrix) FrobeniusNorm() float64 {
	return vec.Norm2(m.Data)
}

// MaxAbs returns the largest |element|.
func (m *Matrix) MaxAbs() float64 { return vec.NormInf(m.Data) }

// Equalish reports whether the matrices have the same shape and agree
// element-wise within tol (absolute on elements <=1, relative above).
func (m *Matrix) Equalish(b *Matrix, tol float64) bool {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return false
	}
	for i, v := range m.Data {
		w := b.Data[i]
		scale := math.Max(1, math.Max(math.Abs(v), math.Abs(w)))
		if math.Abs(v-w) > tol*scale {
			return false
		}
	}
	return true
}

// IsUpperHessenberg reports whether every element below the first subdiagonal
// is smaller in magnitude than tol.
func (m *Matrix) IsUpperHessenberg(tol float64) bool {
	for i := 2; i < m.Rows; i++ {
		for j := 0; j < i-1 && j < m.Cols; j++ {
			if math.Abs(m.At(i, j)) > tol {
				return false
			}
		}
	}
	return true
}

// IsTridiagonal reports whether every element outside the three central
// diagonals is smaller in magnitude than tol.
func (m *Matrix) IsTridiagonal(tol float64) bool {
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if j < i-1 || j > i+1 {
				if math.Abs(m.At(i, j)) > tol {
					return false
				}
			}
		}
	}
	return true
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	s := fmt.Sprintf("%dx%d[", m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		if i > 0 {
			s += "; "
		}
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				s += " "
			}
			s += fmt.Sprintf("%.4g", m.At(i, j))
		}
	}
	return s + "]"
}
