package dense

import (
	"fmt"
	"math"
	"sort"

	"sdcgmres/internal/vec"
)

// SVD holds a thin singular value decomposition A = U diag(S) Vᵀ where A is
// m-by-n with m >= n, U is m-by-n with orthonormal columns, V is n-by-n
// orthogonal, and S is sorted in non-increasing order.
type SVD struct {
	U *Matrix
	S []float64
	V *Matrix
}

// maxJacobiSweeps bounds the one-sided Jacobi iteration. Convergence for the
// small, well-scaled matrices produced by GMRES takes a handful of sweeps;
// 60 leaves an enormous safety margin while still guaranteeing termination.
const maxJacobiSweeps = 60

// ComputeSVD computes a thin SVD of a by the one-sided Jacobi method:
// columns of a working copy are repeatedly rotated in pairs until all are
// mutually orthogonal; their norms are then the singular values. One-sided
// Jacobi is slower than Golub–Kahan bidiagonalization but simple, highly
// accurate for small matrices (it computes tiny singular values to high
// relative accuracy), and entirely adequate for the k-by-k projected
// problems GMRES produces.
//
// Matrices with more columns than rows are handled by decomposing the
// transpose and swapping U and V.
func ComputeSVD(a *Matrix) *SVD {
	if a.Rows < a.Cols {
		t := ComputeSVD(a.Transpose())
		return &SVD{U: t.V, S: t.S, V: t.U}
	}
	m, n := a.Rows, a.Cols
	// Work on columns: w[j] is column j of the evolving matrix A*V.
	w := make([][]float64, n)
	for j := 0; j < n; j++ {
		w[j] = a.Col(j)
	}
	v := Identity(n)
	vcols := make([][]float64, n)
	for j := 0; j < n; j++ {
		vcols[j] = v.Col(j)
	}

	const eps = 2.220446049250313e-16
	tol := eps * math.Sqrt(float64(m))
	for sweep := 0; sweep < maxJacobiSweeps; sweep++ {
		rotated := false
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				alpha := vec.Dot(w[p], w[p])
				beta := vec.Dot(w[q], w[q])
				gamma := vec.Dot(w[p], w[q])
				if math.Abs(gamma) <= tol*math.Sqrt(alpha*beta) || gamma == 0 {
					continue
				}
				rotated = true
				// Classic Jacobi rotation that zeroes the (p,q) entry of
				// the implicit Gram matrix.
				zeta := (beta - alpha) / (2 * gamma)
				t := math.Copysign(1, zeta) / (math.Abs(zeta) + math.Sqrt(1+zeta*zeta))
				c := 1 / math.Sqrt(1+t*t)
				s := c * t
				rotateCols(w[p], w[q], c, s)
				rotateCols(vcols[p], vcols[q], c, s)
			}
		}
		if !rotated {
			break
		}
	}

	// Singular values are the column norms; sort descending.
	type colSV struct {
		sigma float64
		idx   int
	}
	svs := make([]colSV, n)
	for j := 0; j < n; j++ {
		svs[j] = colSV{sigma: vec.Norm2(w[j]), idx: j}
	}
	sort.SliceStable(svs, func(i, j int) bool { return svs[i].sigma > svs[j].sigma })

	out := &SVD{U: NewMatrix(m, n), S: make([]float64, n), V: NewMatrix(n, n)}
	for j, sv := range svs {
		out.S[j] = sv.sigma
		col := w[sv.idx]
		if sv.sigma > 0 {
			for i := 0; i < m; i++ {
				out.U.Set(i, j, col[i]/sv.sigma)
			}
		} else if j < m {
			// Zero singular value: any unit vector orthogonal to the rest
			// would do for U's column; leave it zero — consumers only use
			// columns with sigma above the truncation threshold.
			out.U.Set(j, j, 0)
		}
		vc := vcols[sv.idx]
		for i := 0; i < n; i++ {
			out.V.Set(i, j, vc[i])
		}
	}
	return out
}

func rotateCols(p, q []float64, c, s float64) {
	for i := range p {
		a, b := p[i], q[i]
		p[i] = c*a - s*b
		q[i] = s*a + c*b
	}
}

// Cond2 returns σmax/σmin from the decomposition, +Inf when σmin is zero.
func (s *SVD) Cond2() float64 {
	if len(s.S) == 0 {
		return 1
	}
	smin := s.S[len(s.S)-1]
	if smin == 0 {
		return math.Inf(1)
	}
	return s.S[0] / smin
}

// Rank returns the number of singular values exceeding relTol*σmax.
func (s *SVD) Rank(relTol float64) int {
	if len(s.S) == 0 {
		return 0
	}
	thresh := relTol * s.S[0]
	r := 0
	for _, sv := range s.S {
		if sv > thresh {
			r++
		}
	}
	return r
}

// SolveMinNorm returns the minimum-norm least-squares solution
// y = V Σ⁺ Uᵀ b, truncating singular values at or below relTol*σmax.
// This is the rank-revealing regularized solve of Section VI-D ("Approach
// 3"): the update coefficients are bounded by ‖b‖·σmax/σtrunc no matter how
// close to singular the projected matrix is.
func (s *SVD) SolveMinNorm(b []float64, relTol float64) []float64 {
	m, n := s.U.Rows, s.U.Cols
	if len(b) != m {
		panic(fmt.Sprintf("dense.SolveMinNorm: b has length %d, want %d", len(b), m))
	}
	var thresh float64
	if len(s.S) > 0 {
		thresh = relTol * s.S[0]
	}
	// c = Σ⁺ Uᵀ b with truncation.
	c := make([]float64, n)
	for j := 0; j < n; j++ {
		if s.S[j] <= thresh || s.S[j] == 0 {
			continue
		}
		var d float64
		for i := 0; i < m; i++ {
			d += s.U.At(i, j) * b[i]
		}
		c[j] = d / s.S[j]
	}
	y := make([]float64, n)
	s.V.MatVec(y, c)
	return y
}

// SolveSVD is a convenience wrapper: decompose a and solve the truncated
// least-squares problem min‖a y − b‖₂ with relative truncation tolerance
// relTol.
func SolveSVD(a *Matrix, b []float64, relTol float64) []float64 {
	return ComputeSVD(a).SolveMinNorm(b, relTol)
}
