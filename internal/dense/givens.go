package dense

import "math"

// Givens represents a Givens plane rotation
//
//	| C  S | |a|   |r|
//	|-S  C | |b| = |0|
//
// chosen to annihilate b. GMRES applies a sequence of these to reduce the
// upper-Hessenberg projected matrix to triangular form one column at a time,
// keeping the least-squares update at O(k) work per iteration.
type Givens struct {
	C, S float64
}

// MakeGivens computes the rotation that zeroes b against a, using the
// hypot-based formulation that is safe against overflow. It returns the
// rotation and the resulting r = ±hypot(a, b).
func MakeGivens(a, b float64) (g Givens, r float64) {
	switch {
	case b == 0:
		// Includes a == 0: identity rotation.
		return Givens{C: 1, S: 0}, a
	case a == 0:
		return Givens{C: 0, S: 1}, b
	}
	r = math.Hypot(a, b)
	return Givens{C: a / r, S: b / r}, r
}

// Apply rotates the pair (a, b), returning (C*a + S*b, -S*a + C*b).
func (g Givens) Apply(a, b float64) (float64, float64) {
	return g.C*a + g.S*b, -g.S*a + g.C*b
}

// ApplyInverse applies the transpose (= inverse) rotation.
func (g Givens) ApplyInverse(a, b float64) (float64, float64) {
	return g.C*a - g.S*b, g.S*a + g.C*b
}

// ApplyRows applies the rotation to rows i and k of matrix m, acting on
// columns [c0, m.Cols).
func (g Givens) ApplyRows(m *Matrix, i, k, c0 int) {
	for j := c0; j < m.Cols; j++ {
		a, b := m.At(i, j), m.At(k, j)
		ra, rb := g.Apply(a, b)
		m.Set(i, j, ra)
		m.Set(k, j, rb)
	}
}
